// QUIC frames, including the multipath extension frames of
// draft-liu-multipath-quic and XLINK's QoE feedback.
//
// Standard frames use their RFC 9000 type codes. Extension frames use the
// experimental greased codepoints the draft reserved: ACK_MP (0xbaba),
// PATH_STATUS (0xbabb) and QOE_CONTROL_SIGNALS (0xbabc). As in the paper's
// deployed implementation, ACK_MP can optionally carry the QoE control
// signal inline; the standalone QOE_CONTROL_SIGNALS frame lets a sender
// emit feedback decoupled from ACK frequency.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "quic/types.h"
#include "quic/varint.h"

namespace xlink::quic {

/// Payload bytes of a CRYPTO/STREAM frame: owned on the send/store side,
/// borrowed (a view of the receive buffer) on the decode hot path, where it
/// saves one heap allocation and copy per data frame. Copying an owned
/// payload deep-copies; copying a borrowed payload copies only the view, so
/// borrowed frames must not outlive the datagram they view -- Connection
/// honours this by never storing received frames past the dispatch call.
class FrameData {
 public:
  FrameData() = default;
  FrameData(std::vector<std::uint8_t> bytes)  // NOLINT: implicit by design
      : owned_(std::move(bytes)), view_(owned_) {}
  FrameData(std::initializer_list<std::uint8_t> bytes)
      : owned_(bytes), view_(owned_) {}

  static FrameData borrowed(std::span<const std::uint8_t> bytes) {
    FrameData d;
    d.view_ = bytes;
    return d;
  }

  FrameData(const FrameData& other) { assign(other); }
  FrameData& operator=(const FrameData& other) {
    if (this != &other) {
      owned_.clear();
      assign(other);
    }
    return *this;
  }
  FrameData(FrameData&& other) noexcept { move_from(other); }
  FrameData& operator=(FrameData&& other) noexcept {
    if (this != &other) move_from(other);
    return *this;
  }

  /// vector-style fill assign (owned).
  void assign(std::size_t n, std::uint8_t value) {
    owned_.assign(n, value);
    view_ = owned_;
  }

  const std::uint8_t* data() const { return view_.data(); }
  std::size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  std::span<const std::uint8_t> span() const { return view_; }
  operator std::span<const std::uint8_t>() const {  // NOLINT: by design
    return view_;
  }
  auto begin() const { return view_.begin(); }
  auto end() const { return view_.end(); }

  bool operator==(const FrameData& other) const {
    return view_.size() == other.view_.size() &&
           std::equal(view_.begin(), view_.end(), other.view_.begin());
  }

 private:
  void assign(const FrameData& other) {
    if (other.owned_.empty()) {
      view_ = other.view_;
    } else {
      owned_ = other.owned_;
      view_ = owned_;
    }
  }
  void move_from(FrameData& other) {
    if (other.owned_.empty()) {
      owned_.clear();
      view_ = other.view_;
    } else {
      owned_ = std::move(other.owned_);
      view_ = owned_;
    }
    other.view_ = {};
  }

  std::vector<std::uint8_t> owned_;
  std::span<const std::uint8_t> view_;
};

// Extension frame type codes.
constexpr std::uint64_t kFrameAckMp = 0xbaba;
constexpr std::uint64_t kFramePathStatus = 0xbabb;
constexpr std::uint64_t kFrameQoeControlSignals = 0xbabc;
constexpr std::uint64_t kFrameRepair = 0xbabd;

/// Client video QoE snapshot (paper §5.2): everything the double-threshold
/// controller needs to estimate play-time left.
struct QoeSignal {
  std::uint64_t cached_bytes = 0;
  std::uint64_t cached_frames = 0;
  std::uint64_t bps = 0;  // current video bitrate, bits/second
  std::uint64_t fps = 0;  // current video framerate, frames/second

  bool operator==(const QoeSignal&) const = default;
};

/// Inclusive packet-number interval, highest-first in AckInfo::ranges.
struct AckRange {
  PacketNumber first = 0;  // lowest pn in range
  PacketNumber last = 0;   // highest pn in range
  bool operator==(const AckRange&) const = default;
};

/// The ack-block portion shared by ACK and ACK_MP.
struct AckInfo {
  std::uint64_t ack_delay_us = 0;
  /// Sorted descending by `last`; ranges[0].last is the largest acked pn.
  std::vector<AckRange> ranges;

  PacketNumber largest_acked() const {
    return ranges.empty() ? 0 : ranges.front().last;
  }
  bool contains(PacketNumber pn) const;
  bool operator==(const AckInfo&) const = default;
};

struct PaddingFrame {
  std::uint64_t length = 1;
  bool operator==(const PaddingFrame&) const = default;
};

struct PingFrame {
  bool operator==(const PingFrame&) const = default;
};

struct AckFrame {
  AckInfo info;
  bool operator==(const AckFrame&) const = default;
};

/// Multipath ACK: acknowledges packets of one path's number space,
/// optionally piggybacking the QoE control signal (paper Fig. 16).
struct AckMpFrame {
  PathId path_id = 0;  // CID sequence number identifying the space
  AckInfo info;
  std::optional<QoeSignal> qoe;
  bool operator==(const AckMpFrame&) const = default;
};

struct PathStatusKind {
  static constexpr std::uint64_t kAbandon = 0;
  static constexpr std::uint64_t kStandby = 1;
  static constexpr std::uint64_t kAvailable = 2;
};

struct PathStatusFrame {
  PathId path_id = 0;
  std::uint64_t status_seq = 0;  // monotonically increasing per path
  std::uint64_t status = PathStatusKind::kAvailable;
  bool operator==(const PathStatusFrame&) const = default;
};

struct QoeControlSignalsFrame {
  QoeSignal qoe;
  bool operator==(const QoeControlSignalsFrame&) const = default;
};

/// FEC repair symbol (QUIC-FEC style extension, greased codepoint 0xbabd).
/// Covers the window of `k` consecutive source packets [first_pn,
/// first_pn + k) in `path_id`'s packet-number space; `symbol_index` names
/// this symbol's row among the window's `repair_count` repair symbols. The
/// payload is one coded symbol: every source symbol is a sealed datagram
/// framed as [2-byte big-endian length || wire bytes || zero padding].
struct RepairFrame {
  PathId path_id = 0;
  std::uint64_t window_id = 0;
  PacketNumber first_pn = 0;
  std::uint64_t k = 1;             // source symbols in the window
  std::uint64_t repair_count = 1;  // repair symbols emitted for the window
  std::uint64_t symbol_index = 0;  // this symbol's row, < repair_count
  FrameData payload;
  bool operator==(const RepairFrame&) const = default;
};

struct CryptoFrame {
  std::uint64_t offset = 0;
  FrameData data;
  bool operator==(const CryptoFrame&) const = default;
};

struct StreamFrame {
  StreamId stream_id = 0;
  std::uint64_t offset = 0;
  FrameData data;
  bool fin = false;
  bool operator==(const StreamFrame&) const = default;
};

struct MaxDataFrame {
  std::uint64_t maximum = 0;
  bool operator==(const MaxDataFrame&) const = default;
};

struct MaxStreamDataFrame {
  StreamId stream_id = 0;
  std::uint64_t maximum = 0;
  bool operator==(const MaxStreamDataFrame&) const = default;
};

struct ResetStreamFrame {
  StreamId stream_id = 0;
  std::uint64_t error_code = 0;
  std::uint64_t final_size = 0;
  bool operator==(const ResetStreamFrame&) const = default;
};

struct StopSendingFrame {
  StreamId stream_id = 0;
  std::uint64_t error_code = 0;
  bool operator==(const StopSendingFrame&) const = default;
};

struct NewConnectionIdFrame {
  std::uint64_t sequence = 0;
  std::uint64_t retire_prior_to = 0;
  std::array<std::uint8_t, 8> cid{};
  std::array<std::uint8_t, 16> reset_token{};
  bool operator==(const NewConnectionIdFrame&) const = default;
};

struct PathChallengeFrame {
  std::array<std::uint8_t, 8> data{};
  bool operator==(const PathChallengeFrame&) const = default;
};

struct PathResponseFrame {
  std::array<std::uint8_t, 8> data{};
  bool operator==(const PathResponseFrame&) const = default;
};

struct HandshakeDoneFrame {
  bool operator==(const HandshakeDoneFrame&) const = default;
};

struct ConnectionCloseFrame {
  std::uint64_t error_code = 0;
  std::string reason;
  bool operator==(const ConnectionCloseFrame&) const = default;
};

using Frame =
    std::variant<PaddingFrame, PingFrame, AckFrame, AckMpFrame,
                 PathStatusFrame, QoeControlSignalsFrame, RepairFrame,
                 CryptoFrame, StreamFrame, MaxDataFrame, MaxStreamDataFrame,
                 ResetStreamFrame, StopSendingFrame, NewConnectionIdFrame,
                 PathChallengeFrame, PathResponseFrame, HandshakeDoneFrame,
                 ConnectionCloseFrame>;

/// Serializes one frame (type code + body) into `w`.
void encode_frame(const Frame& frame, Writer& w);
void encode_frame(const Frame& frame, BufWriter& w);
void encode_frame(const Frame& frame, SizeWriter& w);

/// Whether parsed CRYPTO/STREAM payloads copy into owned storage or borrow
/// a view of the input buffer (zero-copy; input must outlive the frames).
enum class PayloadOwnership { kCopy, kBorrow };

/// Parses one frame; nullopt on malformed/unknown input.
std::optional<Frame> parse_frame(Reader& r,
                                 PayloadOwnership own = PayloadOwnership::kCopy);

/// Parses a full packet payload into frames; nullopt if any frame is bad.
std::optional<std::vector<Frame>> parse_frames(
    std::span<const std::uint8_t> payload);

/// Appends the payload's frames to `out` (reusing its capacity -- the
/// receive hot path passes a cleared scratch vector); false if any frame is
/// bad. Borrowed frames view `payload` directly.
bool parse_frames_into(std::span<const std::uint8_t> payload,
                       std::vector<Frame>& out,
                       PayloadOwnership own = PayloadOwnership::kBorrow);

/// Encoded size of a frame (counted, no allocation).
std::size_t frame_wire_size(const Frame& frame);

/// True if the frame counts as ack-eliciting per RFC 9002 §2.
bool is_ack_eliciting(const Frame& frame);

/// Overhead of a STREAM frame header for given ids/offset/length.
std::size_t stream_frame_overhead(StreamId id, std::uint64_t offset,
                                  std::size_t length);

/// Serializes/parses transport parameters (carried in CRYPTO frames during
/// the simplified handshake).
std::vector<std::uint8_t> encode_transport_params(const TransportParams& p);
std::optional<TransportParams> parse_transport_params(
    std::span<const std::uint8_t> data);

}  // namespace xlink::quic
