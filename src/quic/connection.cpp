#include "quic/connection.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace xlink::quic {
namespace {

/// Priority class ordering: frame priority dominates, then stream priority.
/// Higher class goes earlier in pkt_send_q.
std::pair<int, int> item_class(const SendItem& it) {
  return {it.frame_priority, it.stream_priority};
}

/// Deterministic CID bytes; in a real handshake these are exchanged, here
/// both endpoints derive the same values so routing agrees by construction.
/// `server_id` is embedded at kCidServerIdOffset for QUIC-LB routing.
ConnectionId derive_cid(Role issuer, std::uint32_t seq,
                        std::uint8_t server_id) {
  ConnectionId cid;
  cid.sequence = seq;
  const std::uint64_t tag =
      (issuer == Role::kClient ? 0xc11e57ULL : 0x5e47e2ULL);
  std::uint64_t x = tag * 0x9e3779b97f4a7c15ULL + seq;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  for (int i = 0; i < 8; ++i)
    cid.bytes[i] = static_cast<std::uint8_t>(x >> (8 * i));
  cid.bytes[kCidServerIdOffset] = server_id;
  return cid;
}

std::array<std::uint8_t, 8> derive_challenge(PathId id) {
  std::array<std::uint8_t, 8> d{};
  std::uint64_t x = 0xabcd0000ULL + id;
  x *= 0x2545f4914f6cdd1dULL;
  for (int i = 0; i < 8; ++i) d[i] = static_cast<std::uint8_t>(x >> (8 * i));
  return d;
}

constexpr int kMaxAckRanges = 32;
constexpr int kAckElicitingThreshold = 2;

}  // namespace

std::string ConnectionId::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (std::uint8_t b : bytes) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

Connection::Connection(sim::EventLoop& loop, Config config)
    : loop_(loop), config_(std::move(config)), aead_(config_.aead_key) {
  // CID sequence 0 for both directions exists from the start (handshake
  // CIDs); the peer's params arrive later but path 0's CIDs are implicit.
  local_cids_[0] = derive_cid(config_.role, 0, config_.cid_server_id);
  peer_cids_[0] = derive_cid(
      config_.role == Role::kClient ? Role::kServer : Role::kClient, 0,
      config_.peer_cid_server_id);
  next_local_cid_seq_ = 1;
  local_max_data_ = config_.params.initial_max_data;
  // Until the peer's params arrive, assume symmetric defaults (the true
  // values are applied in handle_crypto).
  peer_max_data_ = config_.params.initial_max_data;
  if (config_.fec.enabled) {
    fec_recovery_ = std::make_unique<fec::RecoveryBuffer>(config_.fec);
    fec_recovery_->set_trace(config_.trace, trace_origin());
    if (config_.fec.protect)
      fec_framer_ = std::make_unique<fec::FecFramer>(config_.fec);
    fec_recovered_scratch_.reserve(fec::kMaxRepairs);
  }
  // The auditor's config gate ANDs with the environment so XLINK_AUDIT=0
  // silences an audit-enabled build without recompiling.
  config_.audit.enabled = config_.audit.enabled && audit_enabled_by_env();
  auditor_ = InvariantAuditor(config_.audit);
}

Connection::~Connection() {
  if (timer_id_) loop_.cancel(timer_id_);
}

// --------------------------------------------------------------- lifecycle

void Connection::connect() {
  assert(config_.role == Role::kClient);
  if (handshake_sent_) return;
  create_path(0, PathState::State::kActive);
  send_handshake_initial();
}

void Connection::send_handshake_initial() {
  handshake_sent_ = true;
  CryptoFrame crypto;
  crypto.data = encode_transport_params(config_.params);
  queue_control(0, Frame{std::move(crypto)});
  pump();
}

void Connection::close(std::uint64_t error_code, const std::string& reason) {
  if (closed_) return;
  close_state_ = CloseState::kClosing;
  closed_ = true;
  close_info_.closed = true;
  close_info_.peer_initiated = false;
  close_info_.error_code = error_code;
  close_info_.reason = reason;
  close_recv_since_send_ = 0;
  close_resend_threshold_ = 1;
  if (!paths_.empty() && send_fn_) send_close_frame(fastest_active_path());
  if (timer_id_) {
    loop_.cancel(timer_id_);
    timer_id_ = 0;
  }
}

void Connection::send_close_frame(PathId path) {
  send_control_packet(
      path,
      {Frame{ConnectionCloseFrame{close_info_.error_code, close_info_.reason}}},
      /*count_inflight=*/false);
}

void Connection::close_with_error(TransportError code, ViolationKind kind,
                                  std::uint64_t observed, PathId path) {
  if (!config_.budgets.enforce || closed_) return;
  ++guard_.violations;
  XLINK_TRACE(config_.trace,
              telemetry::Event::guard_violation(
                  loop_.now(), trace_origin(), static_cast<std::uint8_t>(path),
                  static_cast<std::uint64_t>(code),
                  static_cast<std::uint64_t>(kind), observed));
  close(static_cast<std::uint64_t>(code),
        std::string("guard: ") + violation_kind_name(kind));
}

bool Connection::frame_legal_in_state(const Frame& frame) const {
  if (established_) return true;
  // Pre-handshake only the frames that complete it may appear. The check is
  // sequential per frame, so CRYPTO in the same packet legalizes what
  // follows it (e.g. the server's HANDSHAKE_DONE).
  return std::holds_alternative<CryptoFrame>(frame) ||
         std::holds_alternative<PingFrame>(frame) ||
         std::holds_alternative<PaddingFrame>(frame) ||
         std::holds_alternative<AckFrame>(frame) ||
         std::holds_alternative<AckMpFrame>(frame) ||
         std::holds_alternative<PathChallengeFrame>(frame) ||
         std::holds_alternative<PathResponseFrame>(frame) ||
         std::holds_alternative<ConnectionCloseFrame>(frame);
}

// ------------------------------------------------------------------- paths

void Connection::trace_path_state(const PathState& p) {
  XLINK_TRACE(config_.trace,
              telemetry::Event::path_status(
                  loop_.now(), trace_origin(), static_cast<std::uint8_t>(p.id),
                  static_cast<std::uint64_t>(p.state)));
}

PathState& Connection::create_path(PathId id, PathState::State state) {
  auto it = paths_.find(id);
  if (it != paths_.end()) return *it->second;
  auto p = std::make_unique<PathState>();
  p->id = id;
  p->state = state;
  // RFC 9002 §5.3: RTT samples may subtract at most the negotiated
  // max_ack_delay; the estimator owns the clamp.
  p->rtt.set_max_ack_delay(sim::millis(config_.params.max_ack_delay_ms));
  if (config_.cc == CcAlgorithm::kCoupledLia) {
    if (!lia_group_) lia_group_ = std::make_shared<LiaGroup>();
    p->cc = make_lia_controller(lia_group_);
  } else {
    p->cc = make_congestion_controller(config_.cc);
  }
  p->pacer.configure(config_.pacing);
  p->challenge_data = derive_challenge(id);
  auto [ins, _] = paths_.emplace(id, std::move(p));
  trace_path_state(*ins->second);
  return *ins->second;
}

std::optional<PathId> Connection::open_path() {
  if (!established_ || !multipath_enabled_ || closed_) return std::nullopt;
  // Next unused path id; requires an unused CID from the peer.
  PathId id = 0;
  for (const auto& [pid, _] : paths_) id = std::max(id, pid);
  ++id;
  if (!peer_cids_.contains(id) || !local_cids_.contains(id))
    return std::nullopt;
  PathState& p = create_path(id, PathState::State::kValidating);
  queue_control(id, Frame{PathChallengeFrame{p.challenge_data}});
  pump();
  return id;
}

void Connection::abandon_path(PathId id) {
  auto it = paths_.find(id);
  if (it == paths_.end()) return;
  PathState& p = *it->second;
  if (p.state == PathState::State::kAbandoned) return;
  p.state = PathState::State::kAbandoned;
  trace_path_state(p);
  // Tell the peer on a surviving path.
  PathStatusFrame status;
  status.path_id = id;
  status.status_seq = ++p.status_seq_out;
  status.status = PathStatusKind::kAbandon;
  const PathId carrier = fastest_active_path();
  if (carrier != id || active_path_ids().empty())
    queue_control(carrier, Frame{status});
  // Rescue in-flight data: requeue everything unacked on this path.
  std::vector<SentRecord> rescued;
  rescued.reserve(p.unacked.size());
  for (auto& [pn, rec] : p.unacked) rescued.push_back(std::move(rec));
  p.unacked.clear();
  for (auto& rec : rescued) requeue_record(std::move(rec));
  pump();
}

void Connection::set_path_status(PathId id, std::uint64_t status) {
  auto it = paths_.find(id);
  if (it == paths_.end()) return;
  PathState& p = *it->second;
  if (status == PathStatusKind::kAbandon) {
    abandon_path(id);
    return;
  }
  p.state = status == PathStatusKind::kStandby ? PathState::State::kStandby
                                               : PathState::State::kActive;
  trace_path_state(p);
  PathStatusFrame f;
  f.path_id = id;
  f.status_seq = ++p.status_seq_out;
  f.status = status;
  queue_control(fastest_active_path(), Frame{f});
  pump();
}

void Connection::migrate_to_path(PathId id) {
  if (!peer_cids_.contains(id)) return;
  // Connection migration restarts congestion control on the new path
  // (RFC 9000 §9.5); modeled by the fresh controller in create_path.
  std::vector<PathId> old_ids;
  for (const auto& [pid, p] : paths_)
    if (pid != id && p->state != PathState::State::kAbandoned)
      old_ids.push_back(pid);
  PathState& np = create_path(id, PathState::State::kActive);
  np.cc->reset();
  // The bandwidth model belongs to the old network path; a migrated
  // connection must rebuild it from scratch (the Fig. 13 restart cost).
  np.sampler.reset();
  np.pacer.reset();
  queue_control(id, Frame{PathChallengeFrame{np.challenge_data}});
  for (PathId old : old_ids) abandon_path(old);
  pump();
}

std::vector<PathId> Connection::path_ids() const {
  std::vector<PathId> out;
  out.reserve(paths_.size());
  for (const auto& [id, _] : paths_) out.push_back(id);
  return out;
}

std::vector<PathId> Connection::active_path_ids() const {
  std::vector<PathId> out;
  for (const auto& [id, p] : paths_)
    if (p->state == PathState::State::kActive) out.push_back(id);
  return out;
}

std::vector<PathId> Connection::schedulable_path_ids() const {
  std::vector<PathId> out;
  for (const auto& [id, p] : paths_)
    if (p->schedulable()) out.push_back(id);
  return out;
}

PathId Connection::fastest_active_path() const {
  // Prefer healthy active paths; a kProbing path only carries traffic when
  // nothing better exists (and then it is also the honest last resort).
  std::optional<PathId> best;
  std::optional<PathId> best_any;
  sim::Duration best_rtt = std::numeric_limits<sim::Duration>::max();
  sim::Duration best_any_rtt = std::numeric_limits<sim::Duration>::max();
  for (const auto& [id, p] : paths_) {
    if (p->state != PathState::State::kActive) continue;
    const sim::Duration rtt = p->rtt.smoothed();
    if (!best_any || rtt < best_any_rtt) {
      best_any = id;
      best_any_rtt = rtt;
    }
    if (p->health == PathState::Health::kProbing) continue;
    if (!best || rtt < best_rtt) {
      best = id;
      best_rtt = rtt;
    }
  }
  if (best) return *best;
  if (best_any) return *best_any;
  // Fall back to any non-abandoned path (e.g. still validating).
  for (const auto& [id, p] : paths_)
    if (p->state != PathState::State::kAbandoned) return id;
  return 0;
}

void Connection::rebind_path(PathId id) {
  auto it = paths_.find(id);
  if (it == paths_.end() || closed_) return;
  PathState& p = *it->second;
  if (p.state == PathState::State::kAbandoned) return;
  // The path's 4-tuple changed (NAT rebind): it must prove liveness again
  // before being treated as established, per RFC 9000 §9.3.
  p.state = PathState::State::kValidating;
  trace_path_state(p);
  queue_control(id, Frame{PathChallengeFrame{p.challenge_data}});
  pump();
}

void Connection::issue_connection_ids() {
  // NEW_CONNECTION_ID is base QUIC (migration needs it), not gated on the
  // multipath extension.
  if (cids_issued_) return;
  cids_issued_ = true;
  const auto limit = static_cast<std::uint32_t>(
      std::min(config_.params.active_connection_id_limit,
               peer_params_ ? peer_params_->active_connection_id_limit
                            : std::uint64_t{4}));
  for (std::uint32_t seq = next_local_cid_seq_; seq < limit; ++seq) {
    local_cids_[seq] = derive_cid(config_.role, seq, config_.cid_server_id);
    NewConnectionIdFrame f;
    f.sequence = seq;
    f.cid = local_cids_[seq].bytes;
    queue_control(0, Frame{f});
  }
  next_local_cid_seq_ = limit;
}

// ----------------------------------------------------------------- streams

StreamId Connection::open_stream() {
  const StreamId id = client_bidi_stream(next_stream_++);
  send_streams_.emplace(id, SendStream(id));
  return id;
}

SendStream* Connection::send_stream(StreamId id) {
  auto it = send_streams_.find(id);
  return it == send_streams_.end() ? nullptr : &it->second;
}

RecvStream* Connection::recv_stream(StreamId id) {
  auto it = recv_streams_.find(id);
  return it == recv_streams_.end() ? nullptr : &it->second;
}

const RecvStream* Connection::recv_stream(StreamId id) const {
  auto it = recv_streams_.find(id);
  return it == recv_streams_.end() ? nullptr : &it->second;
}

void Connection::stream_send(StreamId id, std::vector<std::uint8_t> data,
                             bool fin) {
  stream_send_prioritized(id, std::move(data), fin, /*frame_priority=*/0,
                          /*position=*/0, /*size=*/0);
}

void Connection::stream_send_prioritized(StreamId id,
                                         std::vector<std::uint8_t> data,
                                         bool fin, int frame_priority,
                                         std::uint64_t position,
                                         std::uint64_t size) {
  auto it = send_streams_.find(id);
  if (it == send_streams_.end())
    it = send_streams_.emplace(id, SendStream(id)).first;
  SendStream& stream = it->second;
  const std::uint64_t len = data.size();
  const std::uint64_t offset = stream.write(std::move(data), fin);
  if (size > 0)
    stream.set_frame_priority(position, size, frame_priority);

  // Enqueue items split at video-frame priority boundaries so insertion
  // ordering can act on them independently.
  std::uint64_t cursor = offset;
  const std::uint64_t end = offset + len;
  while (cursor < end) {
    const int prio = stream.frame_priority_at(cursor);
    std::uint64_t run_end = cursor + 1;
    while (run_end < end && stream.frame_priority_at(run_end) == prio)
      ++run_end;
    SendItem item;
    item.stream_id = id;
    item.offset = cursor;
    item.length = run_end - cursor;
    item.fin = fin && run_end == end;
    item.stream_priority = stream.priority();
    item.frame_priority = prio;
    enqueue_item(item, InsertMode::kPriority);
    cursor = run_end;
  }
  if (len == 0 && fin) {
    SendItem item;
    item.stream_id = id;
    item.offset = offset;
    item.length = 0;
    item.fin = true;
    item.stream_priority = stream.priority();
    enqueue_item(item, InsertMode::kPriority);
  }
  pump();
}

void Connection::set_stream_priority(StreamId id, int priority) {
  auto it = send_streams_.find(id);
  if (it == send_streams_.end())
    it = send_streams_.emplace(id, SendStream(id)).first;
  it->second.set_priority(priority);
}

// --------------------------------------------------------------- QoE frame

void Connection::send_qoe_signal(const QoeSignal& qoe) {
  queue_control(fastest_active_path(), Frame{QoeControlSignalsFrame{qoe}});
  pump();
}

// -------------------------------------------------------------- send queue

void Connection::enqueue_item(SendItem item, InsertMode mode) {
  switch (mode) {
    case InsertMode::kAppend:
      pkt_send_q_.push_back(item);
      return;
    case InsertMode::kPriority: {
      auto it = std::find_if(pkt_send_q_.begin(), pkt_send_q_.end(),
                             [&](const SendItem& other) {
                               return item_class(other) < item_class(item);
                             });
      pkt_send_q_.insert(it, item);
      return;
    }
    case InsertMode::kFrontOfClass: {
      auto it = std::find_if(pkt_send_q_.begin(), pkt_send_q_.end(),
                             [&](const SendItem& other) {
                               return item_class(other) <= item_class(item);
                             });
      pkt_send_q_.insert(it, item);
      return;
    }
  }
}

std::uint64_t Connection::reinject_record(SentRecord& record,
                                          InsertMode mode) {
  // Eligibility (including re-arming a record whose earlier duplicate did
  // not resolve the block) is the scheduler's call; here we only do it.
  record.reinjected = true;
  record.reinjected_at = loop_.now();
  std::uint64_t queued = 0;
  for (const SendItem& item : record.items) {
    auto* stream = send_stream(item.stream_id);
    if (!stream) continue;
    for (const auto& [b, e] :
         stream->unacked_within(item.offset, item.offset + item.length)) {
      SendItem dup = item;
      dup.offset = b;
      dup.length = e - b;
      dup.fin = item.fin && e == item.offset + item.length;
      dup.is_reinjection = true;
      dup.origin_path = record.path;
      enqueue_item(dup, mode);
      queued += dup.length;
    }
  }
  return queued;
}

std::uint64_t Connection::connection_send_window() const {
  return peer_max_data_ > data_sent_ ? peer_max_data_ - data_sent_ : 0;
}

// --------------------------------------------------------------- send loop

void Connection::pump() { pump_send(); }

void Connection::pump_send() {
  if (in_pump_ || closed_ || !send_fn_) return;
  in_pump_ = true;
#if !defined(XLINK_AUDIT_DISABLED)
  // Subsampled: a full invariant walk every pump would dominate the hot
  // path; every 64th call keeps drift detection tight enough while staying
  // inside the <5% overhead budget (timer fires land here too -- on_timer
  // ends in pump_send).
  if ((++audit_pump_calls_ & 63) == 0) XLINK_AUDIT_TICK(auditor_, *this);
#endif

  send_pending_acks();

  // Flush control frames (handshake, path management, flow control). They
  // are small and vital, so they bypass the congestion window.
  for (auto& [path_id, queue] : pending_control_) {
    if (queue.empty()) continue;
    auto pit = paths_.find(path_id);
    if (pit == paths_.end() ||
        pit->second->state == PathState::State::kAbandoned) {
      queue.clear();
      continue;
    }
    std::vector<Frame> frames;
    std::size_t used = 0;
    bool suppressed = false;
    while (!queue.empty()) {
      const std::size_t sz = frame_wire_size(queue.front());
      if (used + sz > kMaxPacketPayload && !frames.empty()) {
        // A suppressed send (anti-amplification) re-queued the batch at the
        // head of this queue; stop flushing the path until budget returns.
        if (!send_control_packet(path_id, std::move(frames), true)) {
          suppressed = true;
          break;
        }
        frames = {};
        used = 0;
      }
      frames.push_back(std::move(queue.front()));
      queue.pop_front();
      used += sz;
    }
    if (!suppressed && !frames.empty())
      send_control_packet(path_id, std::move(frames), true);
  }

  // Stream data, scheduler-driven.
  int guard = 0;
  while (guard++ < 200000) {
    if (pkt_send_q_.empty() && config_.scheduler)
      config_.scheduler->maybe_reinject(*this);
    if (pkt_send_q_.empty()) break;

    std::optional<PathId> path;
    if (config_.scheduler) {
      path = config_.scheduler->select_path(*this);
      if (path) XLINK_AUDIT_SCHED(auditor_, *this, *path);
    } else {
      // Single-path: the unique usable path, cwnd permitting.
      for (const auto& [id, p] : paths_) {
        if (p->usable() && p->cwnd_available() >= kDefaultMss / 2) {
          path = id;
          break;
        }
      }
    }
    if (!path) break;
    // Pacing gate: the selected path's token bucket is in debt. Sideline
    // just this path for the rest of the pump (other paths may still have
    // tokens); arm_timers schedules a wake at its next release.
    if (config_.pacing.enabled &&
        !paths_.at(*path)->pacer.can_send(loop_.now())) {
      paths_.at(*path)->pacer_deferred = true;
      continue;
    }
    if (!send_one_packet(*path)) break;
    if (config_.scheduler) config_.scheduler->maybe_reinject(*this);
  }

  // App-limited marker (draft-cheng / RFC 9002 §7.8): the loop stopped
  // with nothing left to send while cwnd headroom remains, so packets now
  // in flight were not cwnd-limited -- their acks must neither inflate
  // cwnd nor lower the bandwidth estimate.
  if (pkt_send_q_.empty() && established_) {
    for (auto& [id, p] : paths_) {
      if (!p->schedulable()) continue;
      // A pacer-deferred path is pacer-limited, not app-limited: its
      // cwnd_available() reads zero, so it is skipped here -- correct,
      // since its next flight WAS constrained by the controller.
      if (p->cwnd_available() >= kDefaultMss)
        p->sampler.on_app_limited(p->loss.bytes_in_flight());
    }
  }

  // The deferral is pump-scoped; clear before arm_timers so the pacer
  // release wake (gated on cwnd headroom) still gets considered.
  if (config_.pacing.enabled)
    for (auto& [id, p] : paths_) p->pacer_deferred = false;

  arm_timers();
  in_pump_ = false;
}

bool Connection::send_one_packet(PathId path_id, bool ignore_cwnd) {
  auto pit = paths_.find(path_id);
  if (pit == paths_.end()) return false;
  PathState& path = *pit->second;
  if (!path.usable()) return false;
  // A failed-over path carries only dead-path probes (PINGs from the probe
  // timer), never fresh stream data.
  if (path.health == PathState::Health::kProbing) return false;

  // PTO probes may exceed the congestion window (RFC 9002 §7.5): when the
  // window is full of packets a dead path will never acknowledge, the probe
  // is the only thing that can restart the ack clock.
  // With sender-side FEC on, data payloads are capped below the MTU so a
  // repair symbol (sealed wire + length prefix + REPAIR header) still fits
  // one packet payload.
  const std::size_t max_payload =
      fec_framer_ ? std::min<std::size_t>(kMaxPacketPayload,
                                          config_.fec.payload_cap)
                  : kMaxPacketPayload;
  const std::size_t budget =
      ignore_cwnd ? max_payload
                  : std::min<std::size_t>(max_payload,
                                          path.cwnd_available());
  if (budget < 64) return false;

  // Reuse the scratch frame list (moved out so re-entrant sends fall back
  // to a fresh vector rather than aliasing).
  std::vector<Frame> frames = std::move(send_frames_scratch_);
  frames.clear();
  std::vector<SendItem> taken;
  std::size_t used = 0;

  while (!pkt_send_q_.empty()) {
    SendItem& head = pkt_send_q_.front();
    // A re-injection on its own origin path is a pointless duplicate; drop
    // it (the original stays tracked by loss detection).
    if (head.is_reinjection && head.origin_path &&
        *head.origin_path == path_id) {
      pkt_send_q_.pop_front();
      continue;
    }
    auto* stream = send_stream(head.stream_id);
    if (!stream) {
      pkt_send_q_.pop_front();
      continue;
    }
    // Skip ranges that were fully acked since queueing (duplicate rescue).
    if (head.length > 0 &&
        stream->range_acked(head.offset, head.offset + head.length)) {
      pkt_send_q_.pop_front();
      continue;
    }
    const std::size_t overhead =
        stream_frame_overhead(head.stream_id, head.offset, head.length);
    if (used + overhead + 1 > budget) break;

    std::uint64_t can_take = std::min<std::uint64_t>(
        head.length, budget - used - overhead);
    // Flow control applies to first transmissions only (duplicates carry
    // already-counted offsets).
    if (!head.is_retransmission && !head.is_reinjection) {
      can_take = std::min(can_take, connection_send_window());
      auto limit_it = peer_max_stream_data_.find(head.stream_id);
      const std::uint64_t stream_limit =
          limit_it != peer_max_stream_data_.end()
              ? limit_it->second
              : (peer_params_ ? peer_params_->initial_max_stream_data
                              : config_.params.initial_max_stream_data);
      can_take = std::min(can_take, stream_limit > head.offset
                                        ? stream_limit - head.offset
                                        : 0);
    }
    if (can_take == 0 && !(head.length == 0 && head.fin)) break;

    SendItem piece = head;
    piece.length = can_take;
    if (can_take < head.length) {
      piece.fin = false;
      head.offset += can_take;
      head.length -= can_take;
    } else {
      pkt_send_q_.pop_front();
    }

    StreamFrame frame;
    frame.stream_id = piece.stream_id;
    frame.offset = piece.offset;
    frame.fin = piece.fin;
    // Borrow the payload straight from the stream buffer: the frame list
    // lives only until seal_packet_buffer copies it onto the wire below.
    frame.data =
        FrameData::borrowed(stream->view_range(piece.offset, piece.length));
    used += overhead + frame.data.size();
    frames.emplace_back(std::move(frame));

    if (piece.is_reinjection) {
      stats_.reinjected_bytes += piece.length;
    } else if (piece.is_retransmission) {
      stats_.retransmitted_bytes += piece.length;
    } else {
      stats_.stream_bytes_sent += piece.length;
      data_sent_ += piece.length;
    }
    taken.push_back(std::move(piece));

    if (used + 32 >= budget) break;  // packet effectively full
  }

  if (taken.empty()) {
    frames.clear();
    send_frames_scratch_ = std::move(frames);
    return false;
  }
  const bool sent = build_and_send(path_id, frames, std::move(taken),
                                   /*ack_eliciting=*/true, /*is_probe=*/false);
  frames.clear();
  send_frames_scratch_ = std::move(frames);
  return sent;
}

bool Connection::send_control_packet(PathId path_id, std::vector<Frame> frames,
                                     bool count_inflight) {
  return build_and_send(path_id, frames, {}, count_inflight,
                        /*is_probe=*/!count_inflight);
}

bool Connection::build_and_send(PathId path_id, std::vector<Frame>& frames,
                                std::vector<SendItem> items,
                                bool ack_eliciting, bool /*is_probe*/) {
  auto pit = paths_.find(path_id);
  if (pit == paths_.end() || !send_fn_) return false;
  PathState& path = *pit->second;

  // Opportunistically piggyback this path's pending ack.
  bool prepended_ack = false;
  if (path.ack_pending && !path.recv_ranges.empty()) {
    AckMpFrame ack;
    ack.path_id = path_id;
    ack.info.ranges = path.recv_ranges;
    ack.info.ack_delay_us = loop_.now() - path.largest_recv_time;
    if (config_.role == Role::kClient && config_.qoe_in_acks &&
        qoe_provider_) {
      ack.qoe = qoe_provider_();
    }
    frames.insert(frames.begin(), Frame{std::move(ack)});
    path.ack_pending = false;
    path.ack_eliciting_unacked = 0;
    ++stats_.acks_sent;
    prepended_ack = true;
  }

  PacketHeader header;
  header.type = established_ ? PacketType::kOneRtt : PacketType::kInitial;
  const auto cid_it = peer_cids_.find(path_id);
  if (cid_it != peer_cids_.end()) header.dcid = cid_it->second.bytes;
  const auto scid_it = local_cids_.find(path_id);
  if (scid_it != local_cids_.end()) header.scid = scid_it->second.bytes;
  header.cid_sequence = path_id;
  header.packet_number = path.next_pn;

  net::PacketBuffer wire = seal_packet_buffer(aead_, header, frames);

  // RFC 9000 §8.1 anti-amplification: until the peer's address on this
  // path is validated, a server may send at most `amplification_factor`
  // times the bytes it received there -- otherwise a spoofed-source probe
  // turns this endpoint into a traffic amplifier. The packet number is not
  // consumed for a suppressed send.
  if (config_.budgets.enforce && config_.role == Role::kServer &&
      path.state == PathState::State::kValidating &&
      path.bytes_sent + wire.size() >
          config_.budgets.amplification_factor * path.bytes_received) {
    ++guard_.amplification_blocked;
    // Suppression must be lossless: nothing here has a SentRecord yet, so
    // anything silently dropped would never be retransmitted. Stream pieces
    // go back to the head of the send queue (first transmissions already
    // charged flow control, so they resend as retransmissions) and
    // retransmittable control frames back to the head of this path's
    // control queue; acks, probes and repair symbols regenerate on their
    // own and are simply dropped.
    for (auto it = items.rbegin(); it != items.rend(); ++it) {
      if (!it->is_reinjection) it->is_retransmission = true;
      pkt_send_q_.push_front(std::move(*it));
    }
    auto& ctrl = pending_control_[path_id];
    for (std::size_t i = frames.size(); i-- > (prepended_ack ? 1u : 0u);) {
      Frame& f = frames[i];
      if (std::holds_alternative<CryptoFrame>(f) ||
          std::holds_alternative<NewConnectionIdFrame>(f) ||
          std::holds_alternative<PathChallengeFrame>(f) ||
          std::holds_alternative<PathResponseFrame>(f) ||
          std::holds_alternative<PathStatusFrame>(f) ||
          std::holds_alternative<MaxDataFrame>(f) ||
          std::holds_alternative<MaxStreamDataFrame>(f) ||
          std::holds_alternative<HandshakeDoneFrame>(f)) {
        ctrl.push_front(std::move(f));
      }
    }
    if (prepended_ack) {
      path.ack_pending = true;
      --stats_.acks_sent;
    }
    return false;
  }
  ++path.next_pn;
  const bool has_ack_eliciting_frame =
      std::any_of(frames.begin(), frames.end(),
                  [](const Frame& f) { return is_ack_eliciting(f); });
  const bool eliciting = ack_eliciting && has_ack_eliciting_frame;
  const bool is_reinjection_pkt =
      !items.empty() &&
      std::all_of(items.begin(), items.end(),
                  [](const SendItem& i) { return i.is_reinjection; });

  if (eliciting || !items.empty()) {
    SentRecord rec;
    rec.pn = header.packet_number;
    rec.path = path_id;
    rec.sent_time = loop_.now();
    rec.bytes = wire.size();
    rec.ack_eliciting = eliciting;
    rec.is_reinjection = is_reinjection_pkt;
    rec.items = std::move(items);
    for (const Frame& f : frames) {
      // Keep retransmittable control frames (not acks/padding/stream: the
      // stream content is already represented by items).
      if (std::holds_alternative<CryptoFrame>(f) ||
          std::holds_alternative<NewConnectionIdFrame>(f) ||
          std::holds_alternative<PathChallengeFrame>(f) ||
          std::holds_alternative<PathResponseFrame>(f) ||
          std::holds_alternative<PathStatusFrame>(f) ||
          std::holds_alternative<MaxDataFrame>(f) ||
          std::holds_alternative<MaxStreamDataFrame>(f) ||
          std::holds_alternative<HandshakeDoneFrame>(f)) {
        rec.control.push_back(f);
      }
    }
    if (eliciting) {
      // Delivery-rate stamp before loss detection sees the packet: the
      // sampler re-anchors its clocks when bytes_in_flight is still zero.
      path.sampler.on_packet_sent(rec.rate_stamp, rec.sent_time,
                                  path.loss.bytes_in_flight());
    }
    path.loss.on_packet_sent(rec.pn, rec.sent_time, rec.bytes, eliciting);
    if (eliciting) {
      path.last_ack_eliciting_sent = rec.sent_time;
      path.cc->on_packet_sent(rec.bytes, rec.sent_time);
    }
    path.unacked.emplace(rec.pn, std::move(rec));
  }

  // Pacing: every wire departure debits the token bucket (control and acks
  // included, so their bytes count toward the release rate); only the
  // scheduler-driven data loop in pump_send is gated on the balance.
  path.pacer.on_sent(loop_.now(), wire.size());

  ++path.packets_sent;
  path.bytes_sent += wire.size();
  ++stats_.packets_sent;
  stats_.bytes_sent += wire.size();
  XLINK_TRACE(config_.trace,
              telemetry::Event::packet_sent(
                  loop_.now(), trace_origin(),
                  static_cast<std::uint8_t>(path_id), header.packet_number,
                  wire.size(), eliciting, is_reinjection_pkt));

  // Sender-side FEC: every sealed packet except the repair carriers
  // themselves is a source symbol (repairs sit at window boundaries, so
  // the protected packet-number range stays contiguous).
  const bool fec_protect =
      fec_framer_ &&
      !std::any_of(frames.begin(), frames.end(), [](const Frame& f) {
        return std::holds_alternative<RepairFrame>(f);
      });
  if (fec_protect) {
    fec_frames_scratch_.clear();
    fec_framer_->on_packet_sent(path_id, header.packet_number, wire.cspan(),
                                loop_.now(), path_loss_estimate(path),
                                fec_frames_scratch_);
  }
  send_fn_(path_id, std::move(wire));
  if (fec_protect && !fec_frames_scratch_.empty()) {
    ++stats_.fec_windows_protected;
    for (Frame& f : fec_frames_scratch_) {
      const auto& rf = std::get<RepairFrame>(f);
      ++stats_.fec_repair_packets_sent;
      stats_.fec_repair_bytes_sent += rf.payload.size();
      XLINK_TRACE(config_.trace,
                  telemetry::Event::fec_repair_sent(
                      loop_.now(), trace_origin(),
                      static_cast<std::uint8_t>(path_id), rf.window_id,
                      rf.payload.size(), rf.first_pn,
                      static_cast<std::uint8_t>(rf.k),
                      static_cast<std::uint8_t>(rf.repair_count),
                      static_cast<std::uint8_t>(rf.symbol_index)));
      // Each repair symbol travels in its own packet (it nearly fills
      // one); recursion is safe because repair carriers are never fed
      // back into the framer.
      fec_emit_scratch_.clear();
      fec_emit_scratch_.push_back(std::move(f));
      build_and_send(path_id, fec_emit_scratch_, {}, /*ack_eliciting=*/true,
                     /*is_probe=*/false);
      fec_emit_scratch_.clear();
    }
    fec_frames_scratch_.clear();
  }
  return true;
}

void Connection::send_pending_acks() {
  for (auto& [id, p] : paths_) {
    if (!p->ack_pending || p->recv_ranges.empty()) continue;
    if (p->state == PathState::State::kAbandoned) {
      p->ack_pending = false;
      continue;
    }
    const bool due = p->ack_eliciting_unacked >= kAckElicitingThreshold ||
                     p->ack_deadline <= loop_.now();
    if (!due) continue;
    AckMpFrame ack;
    ack.path_id = id;
    ack.info.ranges = p->recv_ranges;
    ack.info.ack_delay_us = loop_.now() - p->largest_recv_time;
    if (config_.role == Role::kClient && config_.qoe_in_acks &&
        qoe_provider_) {
      ack.qoe = qoe_provider_();
    }
    p->ack_pending = false;
    p->ack_eliciting_unacked = 0;
    ++stats_.acks_sent;
    const auto carrier = ack_carrier_path(id);
    if (!carrier) continue;
    send_control_packet(*carrier, {Frame{std::move(ack)}},
                        /*count_inflight=*/false);
  }
}

std::optional<PathId> Connection::ack_carrier_path(PathId acked_path) const {
  const auto it = paths_.find(acked_path);
  const bool original_usable =
      it != paths_.end() && it->second->state != PathState::State::kAbandoned;
  if (config_.ack_policy == AckPathPolicy::kOriginalPath && original_usable)
    return acked_path;
  // Fastest active path; fall back to the original.
  for (const auto& [id, p] : paths_) {
    (void)id;
    if (p->state == PathState::State::kActive) return fastest_active_path();
  }
  return original_usable ? std::optional<PathId>(acked_path) : std::nullopt;
}

// ------------------------------------------------------------ receive side

void Connection::on_datagram(PathId arrival_path, net::Datagram dgram) {
  if (close_state_ == CloseState::kDraining) return;
  if (close_state_ == CloseState::kClosing) {
    // RFC 9000 §10.2.1: keep answering a peer that missed our close, but
    // rate-limited -- one CONNECTION_CLOSE per exponentially growing count
    // of incoming packets, so a flood cannot make us flood back.
    if (++close_recv_since_send_ >= close_resend_threshold_ && send_fn_ &&
        !paths_.empty()) {
      close_recv_since_send_ = 0;
      close_resend_threshold_ *= 2;
      ++guard_.close_resends;
      send_close_frame(fastest_active_path());
    }
    return;
  }
  stats_.bytes_received += dgram.size();
  const auto pkt = parse_packet_view(dgram.span());
  if (!pkt) return;
  const PathId path_id = pkt->header.cid_sequence;
  (void)arrival_path;  // header's CID sequence is authoritative

  auto pit = paths_.find(path_id);
  if (pit == paths_.end()) {
    // New path initiated by the peer, or the server's first sight of the
    // connection (path 0 handshake).
    const bool handshake = pkt->header.type == PacketType::kInitial &&
                           path_id == 0 && config_.role == Role::kServer;
    // A valid unused CID admits a new path: simultaneous use under the
    // multipath extension, or plain QUIC connection migration.
    const bool new_subpath = established_ && local_cids_.contains(path_id);
    if (!handshake && !new_subpath) return;
    PathState& np = create_path(path_id, handshake
                                             ? PathState::State::kActive
                                             : PathState::State::kValidating);
    // Validate the initiator's address ourselves: the path stays
    // kValidating (amplification-capped on the server) until our challenge
    // comes back.
    if (new_subpath)
      queue_control(path_id, Frame{PathChallengeFrame{np.challenge_data}});
    pit = paths_.find(path_id);
  }
  PathState& path = *pit->second;

  // FEC: stash the sealed bytes (pre-decrypt -- open_packet_in_place
  // destroys the ciphertext) so this packet can serve as a present source
  // symbol when a repair window referencing it arrives.
  if (fec_recovery_)
    fec_recovery_->on_source(path_id, pkt->header.packet_number,
                             dgram.cspan(), loop_.now());

  // Decrypt in place inside the receive buffer and parse the frames into
  // the reusable scratch list; stream/crypto payloads borrow from `dgram`,
  // which stays alive for the rest of this call.
  const auto payload = open_packet_in_place(aead_, *pkt);
  std::vector<Frame> frames = std::move(recv_frames_scratch_);
  frames.clear();
  const bool parsed_ok = payload && parse_frames_into(*payload, frames);
  if (!parsed_ok) {
    ++stats_.auth_failures;
    recv_frames_scratch_ = std::move(frames);
    return;
  }

  ++path.packets_received;
  path.bytes_received += dgram.size();
  ++stats_.packets_received;
  XLINK_TRACE(config_.trace,
              telemetry::Event::packet_received(
                  loop_.now(), trace_origin(),
                  static_cast<std::uint8_t>(path_id),
                  pkt->header.packet_number, dgram.size()));

  const bool eliciting =
      std::any_of(frames.begin(), frames.end(),
                  [](const Frame& f) { return is_ack_eliciting(f); });
  const bool duplicate = already_received(path, pkt->header.packet_number);
  if (duplicate) {
    ++guard_.replayed_packets;
    if (config_.budgets.enforce &&
        guard_.replayed_packets > config_.budgets.max_replayed_packets) {
      close_with_error(TransportError::kProtocolViolation,
                       ViolationKind::kReplayFlood, guard_.replayed_packets,
                       path_id);
    }
  }
  note_received(path, pkt->header.packet_number, eliciting);
  if (!duplicate && !closed_)
    handle_frames(path_id, pkt->header.packet_number, frames);

  frames.clear();
  recv_frames_scratch_ = std::move(frames);
  pump_send();
}

bool Connection::already_received(const PathState& p, PacketNumber pn) const {
  for (const AckRange& r : p.recv_ranges)
    if (pn >= r.first && pn <= r.last) return true;
  return false;
}

void Connection::note_received(PathState& p, PacketNumber pn,
                               bool ack_eliciting) {
  // Merge pn into the descending-sorted range list.
  bool merged = false;
  for (std::size_t i = 0; i < p.recv_ranges.size() && !merged; ++i) {
    AckRange& r = p.recv_ranges[i];
    if (pn >= r.first && pn <= r.last) {
      merged = true;  // duplicate
    } else if (pn == r.last + 1) {
      r.last = pn;
      if (i > 0 && p.recv_ranges[i - 1].first == r.last + 1) {
        p.recv_ranges[i - 1].first = r.first;
        p.recv_ranges.erase(p.recv_ranges.begin() + static_cast<long>(i));
      }
      merged = true;
    } else if (pn + 1 == r.first) {
      r.first = pn;
      if (i + 1 < p.recv_ranges.size() &&
          p.recv_ranges[i + 1].last + 1 == r.first) {
        r.first = p.recv_ranges[i + 1].first;
        p.recv_ranges.erase(p.recv_ranges.begin() + static_cast<long>(i + 1));
      }
      merged = true;
    }
  }
  if (!merged) {
    auto it = std::find_if(p.recv_ranges.begin(), p.recv_ranges.end(),
                           [pn](const AckRange& r) { return r.last < pn; });
    p.recv_ranges.insert(it, AckRange{pn, pn});
  }
  if (p.recv_ranges.size() > kMaxAckRanges) p.recv_ranges.pop_back();

  if (pn == p.recv_ranges.front().last) p.largest_recv_time = loop_.now();
  if (ack_eliciting) {
    const sim::Time deadline =
        loop_.now() + sim::millis(config_.params.max_ack_delay_ms);
    if (!p.ack_pending || deadline < p.ack_deadline) p.ack_deadline = deadline;
    p.ack_pending = true;
    ++p.ack_eliciting_unacked;
  }
}

void Connection::handle_frames(PathId path_id, PacketNumber /*pn*/,
                               const std::vector<Frame>& frames) {
  for (const Frame& frame : frames) {
    if (closed_) return;
    if (config_.budgets.enforce && !frame_legal_in_state(frame)) {
      close_with_error(TransportError::kProtocolViolation,
                       ViolationKind::kFrameIllegalInState,
                       static_cast<std::uint64_t>(frame.index()), path_id);
      return;
    }
    if (const auto* f = std::get_if<AckFrame>(&frame)) {
      handle_ack_info(path_id, f->info);
    } else if (const auto* f = std::get_if<AckMpFrame>(&frame)) {
      handle_ack_info(f->path_id, f->info);
      if (f->qoe) {
        latest_peer_qoe_ = *f->qoe;
        XLINK_TRACE(config_.trace,
                    telemetry::Event::qoe_signal(
                        loop_.now(), trace_origin(), f->qoe->cached_bytes,
                        f->qoe->cached_frames, f->qoe->bps));
        if (config_.scheduler) config_.scheduler->on_qoe(*this, *f->qoe);
        if (on_qoe_feedback) on_qoe_feedback(*f->qoe);
      }
    } else if (const auto* f = std::get_if<QoeControlSignalsFrame>(&frame)) {
      latest_peer_qoe_ = f->qoe;
      XLINK_TRACE(config_.trace,
                  telemetry::Event::qoe_signal(
                      loop_.now(), trace_origin(), f->qoe.cached_bytes,
                      f->qoe.cached_frames, f->qoe.bps));
      if (config_.scheduler) config_.scheduler->on_qoe(*this, f->qoe);
      if (on_qoe_feedback) on_qoe_feedback(f->qoe);
    } else if (const auto* f = std::get_if<RepairFrame>(&frame)) {
      handle_repair_frame(path_id, *f);
    } else if (const auto* f = std::get_if<StreamFrame>(&frame)) {
      handle_stream_frame(*f);
    } else if (const auto* f = std::get_if<CryptoFrame>(&frame)) {
      handle_crypto(path_id, *f);
    } else if (const auto* f = std::get_if<PathChallengeFrame>(&frame)) {
      // Answering proves nothing about the sender: only OUR challenge being
      // echoed back validates the peer's address (RFC 9000 §8.2.1), so a
      // spoofed-source probe cannot promote the path out of kValidating --
      // where the anti-amplification cap applies.
      queue_control(path_id, Frame{PathResponseFrame{f->data}});
    } else if (const auto* f = std::get_if<PathResponseFrame>(&frame)) {
      auto& p = *paths_.at(path_id);
      if (p.state == PathState::State::kValidating &&
          f->data == p.challenge_data) {
        p.state = PathState::State::kActive;
        trace_path_state(p);
        if (on_path_validated) {
          const PathId validated = path_id;
          loop_.schedule_in(0, [this, validated] {
            if (on_path_validated) on_path_validated(validated);
          });
        }
      }
    } else if (const auto* f = std::get_if<PathStatusFrame>(&frame)) {
      auto it = paths_.find(f->path_id);
      if (it != paths_.end() && f->status_seq > it->second->status_seq_in) {
        it->second->status_seq_in = f->status_seq;
        if (f->status == PathStatusKind::kAbandon) {
          // Peer abandoned: stop using it, rescue in-flight data.
          PathState& p = *it->second;
          if (p.state != PathState::State::kAbandoned) {
            p.state = PathState::State::kAbandoned;
            trace_path_state(p);
            std::vector<SentRecord> rescued;
            for (auto& [pn2, rec] : p.unacked) rescued.push_back(std::move(rec));
            p.unacked.clear();
            for (auto& rec : rescued) requeue_record(std::move(rec));
          }
        } else if (f->status == PathStatusKind::kStandby) {
          it->second->state = PathState::State::kStandby;
          trace_path_state(*it->second);
        } else if (it->second->state == PathState::State::kStandby) {
          it->second->state = PathState::State::kActive;
          trace_path_state(*it->second);
        }
      }
    } else if (const auto* f = std::get_if<NewConnectionIdFrame>(&frame)) {
      // An honest peer never issues beyond our advertised CID limit
      // (RFC 9000 §5.1.1); unbounded acceptance is a memory hole.
      if (config_.budgets.enforce &&
          f->sequence >= config_.params.active_connection_id_limit) {
        close_with_error(TransportError::kConnectionIdLimitError,
                         ViolationKind::kCidLimit, f->sequence, path_id);
        return;
      }
      ConnectionId cid;
      cid.bytes = f->cid;
      cid.sequence = static_cast<std::uint32_t>(f->sequence);
      peer_cids_[cid.sequence] = cid;
    } else if (std::get_if<HandshakeDoneFrame>(&frame)) {
      // Only a server sends HANDSHAKE_DONE (RFC 9000 §19.20).
      if (config_.budgets.enforce && config_.role == Role::kServer) {
        close_with_error(TransportError::kProtocolViolation,
                         ViolationKind::kFrameIllegalInState,
                         static_cast<std::uint64_t>(frame.index()), path_id);
        return;
      }
    } else if (const auto* f = std::get_if<MaxDataFrame>(&frame)) {
      peer_max_data_ = std::max(peer_max_data_, f->maximum);
    } else if (const auto* f = std::get_if<MaxStreamDataFrame>(&frame)) {
      auto& limit = peer_max_stream_data_[f->stream_id];
      limit = std::max(limit, f->maximum);
    } else if (const auto* f = std::get_if<ConnectionCloseFrame>(&frame)) {
      // Peer-initiated termination: enter draining (RFC 9000 §10.2.2) --
      // nothing is ever sent again, incoming datagrams are dropped.
      close_state_ = CloseState::kDraining;
      closed_ = true;
      close_info_.closed = true;
      close_info_.peer_initiated = true;
      close_info_.error_code = f->error_code;
      close_info_.reason = f->reason;
      if (timer_id_) {
        loop_.cancel(timer_id_);
        timer_id_ = 0;
      }
    }
    // PING, PADDING, HANDSHAKE_DONE, RESET_STREAM, STOP_SENDING: no action.
  }
}

void Connection::handle_crypto(PathId /*path_id*/, const CryptoFrame& f) {
  auto params = parse_transport_params(f.data);
  if (!params || peer_params_) return;  // duplicate handshake data
  peer_params_ = *params;
  peer_max_data_ = params->initial_max_data;
  multipath_enabled_ =
      config_.params.enable_multipath && params->enable_multipath;

  if (config_.role == Role::kServer && !handshake_sent_) {
    handshake_sent_ = true;
    CryptoFrame reply;
    reply.data = encode_transport_params(config_.params);
    queue_control(0, Frame{std::move(reply)});
    queue_control(0, Frame{HandshakeDoneFrame{}});
  }
  established_ = true;
  issue_connection_ids();
  if (on_established)
    loop_.schedule_in(0, [this] {
      if (on_established) on_established();
    });
}

void Connection::handle_stream_frame(const StreamFrame& f) {
  const std::uint64_t new_high = f.offset + f.data.size();
  if (config_.budgets.enforce) {
    // Only client-initiated bidirectional ids exist in this transport
    // (open_stream hands out 4n); any other shape is fabricated.
    if ((f.stream_id & 0x3) != 0) {
      close_with_error(TransportError::kStreamStateError,
                       ViolationKind::kStreamIdInvalid, f.stream_id, 0);
      return;
    }
    if (!recv_streams_.contains(f.stream_id) &&
        recv_streams_.size() >= config_.budgets.max_open_recv_streams) {
      close_with_error(TransportError::kStreamLimitError,
                       ViolationKind::kStreamLimit, recv_streams_.size() + 1,
                       0);
      return;
    }
  }
  auto it = recv_streams_.find(f.stream_id);
  if (it == recv_streams_.end()) {
    it = recv_streams_.emplace(f.stream_id, RecvStream(f.stream_id)).first;
    it->second.set_max_gaps(config_.budgets.max_recv_gaps_per_stream);
    guard_.peak_open_recv_streams = std::max<std::uint64_t>(
        guard_.peak_open_recv_streams, recv_streams_.size());
  }
  RecvStream& stream = it->second;

  const std::uint64_t before = stream.contiguous_received();
  const std::uint64_t prev_high =
      std::max(stream.read_offset(), received_high_[f.stream_id]);
  if (config_.budgets.enforce) {
    // Final-size integrity (RFC 9000 §4.5): the FIN offset may not move and
    // no data may lie beyond it.
    if (stream.final_size()) {
      const std::uint64_t fs = *stream.final_size();
      if (new_high > fs || (f.fin && new_high != fs)) {
        close_with_error(TransportError::kFinalSizeError,
                         ViolationKind::kFinalSizeChanged, new_high, 0);
        return;
      }
    }
    // Flow control BEFORE the copy: an offset bomb must not be able to
    // force a giant reassembly-buffer resize.
    const auto grant_it = local_max_stream_data_.find(f.stream_id);
    const std::uint64_t stream_grant =
        grant_it != local_max_stream_data_.end() && grant_it->second > 0
            ? grant_it->second
            : config_.params.initial_max_stream_data;
    if (new_high > stream_grant) {
      close_with_error(TransportError::kFlowControlError,
                       ViolationKind::kStreamFlowControl, new_high, 0);
      return;
    }
    if (new_high > prev_high &&
        data_received_ + (new_high - prev_high) > local_max_data_) {
      close_with_error(TransportError::kFlowControlError,
                       ViolationKind::kConnectionFlowControl,
                       data_received_ + (new_high - prev_high), 0);
      return;
    }
  }

  const std::uint64_t collapses_before = stream.gap_collapses();
  const std::uint64_t phantom_before = stream.phantom_bytes();
  stream.on_data(f.offset, f.data, f.fin);
  guard_.gap_collapses += stream.gap_collapses() - collapses_before;
  guard_.phantom_bytes += stream.phantom_bytes() - phantom_before;
  guard_.peak_stream_gaps = std::max<std::uint64_t>(
      guard_.peak_stream_gaps, stream.tracked_intervals());
  if (new_high > prev_high) {
    data_received_ += new_high - prev_high;
    received_high_[f.stream_id] = new_high;
  }

  const bool finished = stream.fully_received();
  if (stream.contiguous_received() > before && on_stream_readable) {
    const StreamId id = f.stream_id;
    loop_.schedule_in(0, [this, id] {
      if (on_stream_readable) on_stream_readable(id);
    });
  }
  if (finished && on_stream_data_finished &&
      !finished_notified_.contains(f.stream_id)) {
    finished_notified_.insert(f.stream_id);
    const StreamId id = f.stream_id;
    loop_.schedule_in(0, [this, id] {
      if (on_stream_data_finished) on_stream_data_finished(id);
    });
  }
}

double Connection::path_loss_estimate(const PathState& p) const {
  if (p.packets_sent == 0) return 0.0;
  return static_cast<double>(p.packets_lost) /
         static_cast<double>(p.packets_sent);
}

void Connection::handle_repair_frame(PathId path_id, const RepairFrame& f) {
  ++guard_.repair_frames;
  if (config_.budgets.enforce) {
    // A REPAIR bomb: an honest symbol is bounded by the sealed MTU plus its
    // 2-byte length prefix, and each symbol travels in its own packet.
    if (f.payload.size() > config_.budgets.max_repair_symbol_bytes) {
      close_with_error(TransportError::kProtocolViolation,
                       ViolationKind::kRepairOversized, f.payload.size(),
                       path_id);
      return;
    }
    const std::uint64_t allowance =
        config_.budgets.repair_flood_base +
        config_.budgets.repair_flood_per_packet_received *
            stats_.packets_received;
    if (guard_.repair_frames > allowance) {
      close_with_error(TransportError::kProtocolViolation,
                       ViolationKind::kRepairFlood, guard_.repair_frames,
                       path_id);
      return;
    }
  }
  if (!fec_recovery_) return;
  fec_recovered_scratch_.clear();
  const auto outcome =
      fec_recovery_->on_repair(path_id, f, loop_.now(), fec_recovered_scratch_);
  stats_.fec_wasted_symbols += outcome.wasted;
  stats_.fec_erased_seen += outcome.erased_newly_seen;
  stats_.fec_recovered_packets += outcome.recovered;
  if (outcome.wasted > 0) {
    XLINK_TRACE(config_.trace,
                telemetry::Event::fec_wasted(
                    loop_.now(), trace_origin(),
                    static_cast<std::uint8_t>(path_id), f.window_id,
                    outcome.wasted));
  }
  if (fec_recovered_scratch_.empty()) return;
  // Move the list out before delivery: a recovered datagram re-enters
  // on_datagram, which may reach this method again for a later window.
  std::vector<fec::RecoveryBuffer::Recovered> recovered =
      std::move(fec_recovered_scratch_);
  for (auto& rec : recovered) {
    XLINK_TRACE(config_.trace,
                telemetry::Event::fec_recovered(
                    loop_.now(), trace_origin(),
                    static_cast<std::uint8_t>(path_id), rec.pn, rec.window_id,
                    rec.latency_us));
    on_datagram(path_id, std::move(rec.wire));
  }
  recovered.clear();
  fec_recovered_scratch_ = std::move(recovered);
}

void Connection::handle_ack_info(PathId acked_path, const AckInfo& info) {
  auto pit = paths_.find(acked_path);
  if (pit == paths_.end()) return;
  PathState& p = *pit->second;

  ++guard_.ack_frames;
  if (config_.budgets.enforce) {
    // Lying ACK: acknowledging a packet number this path never sent.
    if (!info.ranges.empty() && info.largest_acked() >= p.next_pn) {
      close_with_error(TransportError::kProtocolViolation,
                       ViolationKind::kLyingAck, info.largest_acked(),
                       acked_path);
      return;
    }
    // Ack flood: honest peers generate well under one ack frame per packet
    // we send; a flood is pure CPU/state pressure.
    const std::uint64_t allowance =
        config_.budgets.ack_flood_base +
        config_.budgets.ack_flood_per_packet_sent * stats_.packets_sent;
    if (guard_.ack_frames > allowance) {
      close_with_error(TransportError::kProtocolViolation,
                       ViolationKind::kAckFlood, guard_.ack_frames,
                       acked_path);
      return;
    }
  }

  auto outcome = p.loss.on_ack_received(info, loop_.now(), p.rtt);
  if (outcome.rtt_sample) {
    p.rtt.on_sample(*outcome.rtt_sample, info.ack_delay_us);
  }
  XLINK_TRACE(config_.trace,
              telemetry::Event::ack_mp(
                  loop_.now(), trace_origin(),
                  static_cast<std::uint8_t>(acked_path), info.largest_acked(),
                  outcome.acked_bytes,
                  outcome.rtt_sample ? *outcome.rtt_sample : 0,
                  outcome.rtt_sample.has_value()));
  if (!outcome.newly_acked.empty()) {
    p.pto_count = 0;
    p.last_ack_received = loop_.now();
    // Any fresh ack proves the path round-trips again: resurrect it.
    if (config_.health.enabled && p.health != PathState::Health::kGood)
      resurrect_path(p);
  }

  for (PacketNumber pn : outcome.newly_acked) {
    auto rit = p.unacked.find(pn);
    if (rit == p.unacked.end()) continue;
    SentRecord rec = std::move(rit->second);
    p.unacked.erase(rit);
    for (const SendItem& item : rec.items) {
      auto* stream = send_stream(item.stream_id);
      if (stream)
        stream->on_range_acked(item.offset, item.offset + item.length);
    }
    if (rec.ack_eliciting) {
      p.cc->on_ack(rec.bytes, rec.sent_time, loop_.now(), p.rtt.smoothed(),
                   rec.rate_stamp.is_app_limited);
      // Delivery-rate sample for this packet's flight (draft-cheng); the
      // rate-based controllers rebuild their model from these.
      const RateSample sample = p.sampler.on_ack(
          rec.rate_stamp, rec.bytes, rec.sent_time, loop_.now(),
          pn == info.largest_acked() && outcome.rtt_sample
              ? *outcome.rtt_sample
              : 0,
          p.loss.bytes_in_flight());
      p.cc->on_rate_sample(sample, loop_.now());
      XLINK_TRACE(config_.trace,
                  telemetry::Event::cc_rate_sample(
                      loop_.now(), trace_origin(),
                      static_cast<std::uint8_t>(p.id),
                      static_cast<std::uint64_t>(sample.delivery_rate),
                      static_cast<std::uint64_t>(sample.btlbw),
                      sample.min_rtt, sample.is_app_limited));
    }
  }
  if (!outcome.newly_acked.empty()) {
    update_pacing(p);
    trace_cc_state(p);
  }
  if (!outcome.lost.empty()) on_packets_lost(p, outcome.lost);
}

void Connection::update_pacing(PathState& p) {
  p.pacer.configure(config_.pacing);
  if (!config_.pacing.enabled) return;
  std::uint64_t rate = p.cc->pacing_rate_bytes_per_sec();
  if (rate == 0) {
    // Loss-based controllers have no rate opinion: pace a cwnd per srtt
    // with 25% headroom so pacing shapes bursts without throttling growth.
    const double srtt = sim::to_seconds(p.rtt.smoothed());
    if (srtt > 0.0)
      rate = static_cast<std::uint64_t>(
          1.25 * static_cast<double>(p.cc->cwnd_bytes()) / srtt);
  }
  p.pacer.set_rate(rate);
}

void Connection::trace_cc_state(const PathState& p) {
#if !defined(XLINK_TELEMETRY_DISABLED)
  if (!config_.trace || !config_.trace->enabled()) return;
  const std::size_t ss = p.cc->ssthresh_bytes();
  config_.trace->record(telemetry::Event::cc_state(
      loop_.now(), trace_origin(), static_cast<std::uint8_t>(p.id),
      p.cc->cwnd_bytes(), p.loss.bytes_in_flight(),
      ss == static_cast<std::size_t>(-1) ? telemetry::kNoValue : ss,
      p.rtt.smoothed(), p.cc->in_slow_start(),
      p.pacer.enabled() ? p.pacer.rate_bytes_per_sec() : telemetry::kNoValue));
#else
  (void)p;
#endif
}

// ----------------------------------------------------------- loss handling

void Connection::on_packets_lost(PathState& p,
                                 const std::vector<LostPacket>& pns) {
  sim::Time latest_sent = 0;
  std::vector<SentRecord> lost_records;
  for (const LostPacket& lp : pns) {
    auto it = p.unacked.find(lp.pn);
    if (it == p.unacked.end()) continue;
    latest_sent = std::max(latest_sent, it->second.sent_time);
    XLINK_TRACE(config_.trace,
                telemetry::Event::loss(
                    loop_.now(), trace_origin(),
                    static_cast<std::uint8_t>(p.id), lp.pn, it->second.bytes,
                    static_cast<std::uint8_t>(lp.reason)));
    lost_records.push_back(std::move(it->second));
    p.unacked.erase(it);
  }
  if (lost_records.empty()) return;
  p.packets_lost += lost_records.size();
  stats_.packets_lost += lost_records.size();
  // The sampler never counts lost bytes as delivered, but it must see them
  // so app-limited markers drain when a flight's tail dies instead of
  // being acked (BBR keeps cwnd; the model just stops growing).
  for (const SentRecord& rec : lost_records)
    if (rec.ack_eliciting) p.sampler.on_loss(rec.bytes);
  p.cc->on_loss_event(latest_sent, loop_.now());
  update_pacing(p);
  trace_cc_state(p);
  for (auto& rec : lost_records) requeue_record(std::move(rec));
  if (config_.scheduler) config_.scheduler->on_loss(*this, p.id);
}

void Connection::requeue_record(SentRecord record) {
  // Stream data: requeue the still-unacked subranges, front of their class.
  for (const SendItem& item : record.items) {
    auto* stream = send_stream(item.stream_id);
    if (!stream) continue;
    if (item.length == 0 && item.fin) {
      if (!stream->fully_acked()) {
        SendItem dup = item;
        dup.is_retransmission = true;
        enqueue_item(dup, InsertMode::kFrontOfClass);
      }
      continue;
    }
    for (const auto& [b, e] :
         stream->unacked_within(item.offset, item.offset + item.length)) {
      SendItem dup = item;
      dup.offset = b;
      dup.length = e - b;
      dup.fin = item.fin && e == item.offset + item.length;
      dup.is_retransmission = true;
      // A lost re-injection stays a re-injection, with the path it just
      // died on as its origin, so path selection steers it elsewhere.
      if (dup.is_reinjection) dup.origin_path = record.path;
      enqueue_item(dup, InsertMode::kFrontOfClass);
    }
  }
  // Control frames: path frames stay on their path, the rest go anywhere.
  for (Frame& f : record.control) {
    const bool path_bound = std::holds_alternative<PathChallengeFrame>(f) ||
                            std::holds_alternative<PathResponseFrame>(f);
    if (path_bound) {
      auto it = paths_.find(record.path);
      if (it != paths_.end() &&
          it->second->state != PathState::State::kAbandoned)
        queue_control(record.path, std::move(f));
    } else {
      queue_control(fastest_active_path(), std::move(f));
    }
  }
}

void Connection::on_pto(PathState& p) {
  ++stats_.ptos;
  ++p.pto_count;
  XLINK_TRACE(config_.trace, telemetry::Event::pto(
                                 loop_.now(), trace_origin(),
                                 static_cast<std::uint8_t>(p.id), p.pto_count));
  if (config_.tcp_style_rto) {
    // TCP semantics: RTO collapses the window and slow-starts.
    p.cc->on_persistent_congestion(loop_.now());
  } else if (p.pto_count >= 3) {
    p.cc->on_persistent_congestion(loop_.now());
  }
  if (config_.scheduler) config_.scheduler->on_pto(*this, p.id);

  // Path health: repeated consecutive PTOs mean the path is not just slow
  // but (probably) dead. Degrade early so telemetry shows the slide, fail
  // over once the budget is spent -- but only if another schedulable path
  // can absorb the traffic; the last path keeps limping (kDegraded) with
  // its capped PTO probing, which is the graceful single-path mode.
  if (config_.health.enabled) {
    if (p.pto_count >= config_.health.failover_pto_budget &&
        has_other_schedulable(p.id)) {
      fail_over_path(p);
      return;
    }
    if (p.health == PathState::Health::kGood &&
        p.pto_count >= config_.health.degraded_after_ptos)
      set_path_health(p, PathState::Health::kDegraded);
  }

  // Probe: retransmit the oldest unacked content (kept tracked;
  // stream-level ack state dedupes), including control frames -- a lost
  // handshake CRYPTO or PATH_CHALLENGE must be probed too. If no probe
  // materializes anything sendable, ping so the PTO clock advances.
  int probes = 0;
  bool queued_payload = false;
  for (auto& [pn, rec] : p.unacked) {
    if (!rec.ack_eliciting) continue;
    if (probes >= 2) break;
    ++probes;
    queued_payload |= !rec.items.empty() || !rec.control.empty();
    SentRecord copy;
    copy.items = rec.items;
    copy.control = rec.control;
    copy.path = rec.path;
    requeue_record(std::move(copy));
  }
  if (!queued_payload) queue_control(p.id, Frame{PingFrame{}});
  // Emit the probe now, bypassing the congestion window.
  if (queued_payload) send_one_packet(p.id, /*ignore_cwnd=*/true);
}

// ------------------------------------------------------------ path health

sim::Duration Connection::path_pto_interval(const PathState& p) const {
  return backed_off_pto(
      p.rtt.pto(sim::millis(config_.params.max_ack_delay_ms)), p.pto_count);
}

void Connection::set_path_health(PathState& p, PathState::Health health) {
  if (p.health == health) return;
  p.health = health;
  XLINK_TRACE(config_.trace,
              telemetry::Event::path_health(
                  loop_.now(), trace_origin(), static_cast<std::uint8_t>(p.id),
                  static_cast<std::uint64_t>(health), p.pto_count));
}

bool Connection::has_other_schedulable(PathId id) const {
  for (const auto& [pid, p] : paths_)
    if (pid != id && p->schedulable()) return true;
  return false;
}

void Connection::fail_over_path(PathState& p) {
  set_path_health(p, PathState::Health::kProbing);
  ++stats_.failovers;

  // Standby (reversible, unlike abandon) tells the peer to stop scheduling
  // onto the path too; it flips back to available on resurrection.
  PathStatusFrame status;
  status.path_id = p.id;
  status.status_seq = ++p.status_seq_out;
  status.status = PathStatusKind::kStandby;
  queue_control(fastest_active_path(), Frame{status});

  // Orphan rescue: everything still in flight on the dead path is requeued
  // (still-unacked subranges only) so surviving paths carry it. Loss state
  // is wiped so the path stops charging bytes_in_flight and stops arming
  // loss/PTO deadlines for packets that will never be acked.
  std::vector<SentRecord> rescued;
  rescued.reserve(p.unacked.size());
  for (auto& [pn, rec] : p.unacked) rescued.push_back(std::move(rec));
  p.unacked.clear();
  p.loss.clear_in_flight();
  for (auto& rec : rescued) requeue_record(std::move(rec));

  // Dead-path probing starts at the current backed-off PTO and doubles per
  // silent probe, capped -- the resurrection latency bound.
  p.probe_interval = std::clamp(path_pto_interval(p),
                                config_.health.probe_interval_min,
                                config_.health.probe_interval_max);
  p.next_probe_at = loop_.now() + p.probe_interval;
  p.probes_sent = 0;
  pump_send();
}

void Connection::resurrect_path(PathState& p) {
  const bool was_probing = p.health == PathState::Health::kProbing;
  set_path_health(p, PathState::Health::kGood);
  p.next_probe_at = 0;
  p.probe_interval = 0;
  p.probes_sent = 0;
  if (!was_probing) return;
  ++stats_.path_resurrections;
  PathStatusFrame status;
  status.path_id = p.id;
  status.status_seq = ++p.status_seq_out;
  status.status = PathStatusKind::kAvailable;
  queue_control(fastest_active_path(), Frame{status});
}

void Connection::probe_dead_path(PathState& p) {
  ++p.probes_sent;
  ++stats_.dead_path_probes;
  // Tracked ack-eliciting PING: the ack (carried on a surviving path, since
  // ACK_MP for this space travels anywhere) is the resurrection signal.
  send_control_packet(p.id, {Frame{PingFrame{}}}, /*count_inflight=*/true);
  p.probe_interval =
      std::min(p.probe_interval * 2, config_.health.probe_interval_max);
  p.next_probe_at = loop_.now() + p.probe_interval;
}

// ----------------------------------------------------------------- timers

void Connection::arm_timers() {
  std::optional<sim::Time> earliest;
  auto consider = [&earliest](std::optional<sim::Time> t) {
    if (t && (!earliest || *t < *earliest)) earliest = t;
  };
  for (const auto& [id, p] : paths_) {
    if (p->state == PathState::State::kAbandoned) continue;
    if (p->ack_pending) consider(p->ack_deadline);
    if (p->health == PathState::Health::kProbing) {
      // Failed-over path: only the backoff probe timer runs; loss/PTO
      // deadlines were wiped with the in-flight state at failover.
      if (p->next_probe_at) consider(p->next_probe_at);
      continue;
    }
    consider(p->loss.loss_time(p->rtt));
    if (p->loss.has_ack_eliciting_in_flight())
      consider(p->last_ack_eliciting_sent + path_pto_interval(*p));
    // Pacer release: data is queued, the window has room, only the token
    // bucket is holding the path back -- wake when credit matures.
    if (config_.pacing.enabled && !pkt_send_q_.empty() &&
        p->schedulable() && p->cwnd_available() >= kDefaultMss / 2 &&
        !p->pacer.can_send(loop_.now()))
      consider(p->pacer.next_release_time(loop_.now()));
  }
  if (timer_id_) {
    loop_.cancel(timer_id_);
    timer_id_ = 0;
  }
  if (!earliest || closed_) return;
  // Floor 1ms ahead: a deadline that is already due is handled by the
  // pump/timer pass that follows, and scheduling at `now` could otherwise
  // re-fire within the same instant indefinitely. Pacer releases need
  // sub-millisecond wakes, so with pacing on a strictly-future deadline
  // keeps its exact time (still floored one tick ahead of now).
  sim::Time floor = loop_.now() + sim::kMillisecond;
  if (config_.pacing.enabled && *earliest > loop_.now())
    floor = loop_.now() + 1;
  const sim::Time at = std::max(*earliest, floor);
  timer_id_ = loop_.schedule_at(at, [this] {
    timer_id_ = 0;
    on_timer();
  });
}

void Connection::on_timer() {
  const sim::Time now = loop_.now();
  for (auto& [id, p] : paths_) {
    if (p->state == PathState::State::kAbandoned) continue;
    if (p->health == PathState::Health::kProbing) {
      if (p->next_probe_at && p->next_probe_at <= now) probe_dead_path(*p);
      continue;
    }
    const auto lost = p->loss.detect_losses(now, p->rtt);
    if (!lost.empty()) on_packets_lost(*p, lost);
    if (p->loss.has_ack_eliciting_in_flight()) {
      if (p->last_ack_eliciting_sent + path_pto_interval(*p) <= now)
        on_pto(*p);
    }
  }
  pump_send();
}

// ----------------------------------------------------------- flow control

void Connection::queue_control(PathId path, Frame frame) {
  pending_control_[path].push_back(std::move(frame));
}

std::vector<std::uint8_t> Connection::consume_stream(StreamId id,
                                                     std::size_t max) {
  auto it = recv_streams_.find(id);
  if (it == recv_streams_.end()) return {};
  auto data = it->second.read(max);
  data_consumed_ += data.size();
  maybe_send_flow_updates();
  return data;
}

void Connection::maybe_send_flow_updates() {
  // Connection level: extend when half the window is consumed.
  const std::uint64_t window = config_.params.initial_max_data;
  if (local_max_data_ - data_consumed_ < window / 2) {
    local_max_data_ = data_consumed_ + window;
    queue_control(fastest_active_path(), Frame{MaxDataFrame{local_max_data_}});
  }
  // Stream level.
  const std::uint64_t stream_window = config_.params.initial_max_stream_data;
  for (auto& [id, stream] : recv_streams_) {
    auto& granted = local_max_stream_data_[id];
    if (granted == 0) granted = stream_window;
    if (granted - stream.read_offset() < stream_window / 2) {
      granted = stream.read_offset() + stream_window;
      queue_control(fastest_active_path(),
                    Frame{MaxStreamDataFrame{id, granted}});
    }
  }
  pump();
}

}  // namespace xlink::quic
