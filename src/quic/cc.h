// Congestion controller interface. One instance per path ("decoupled"
// congestion control, the configuration the paper deploys for mobile
// multipath where Wi-Fi and cellular rarely share a bottleneck).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/time.h"

namespace xlink::quic {

constexpr std::size_t kDefaultMss = 1400;
constexpr std::size_t kInitialWindowPackets = 10;
constexpr std::size_t kMinWindowPackets = 2;

/// One delivery-rate sample, produced by the per-path DeliveryRateSampler
/// on every acked ack-eliciting packet
/// (draft-cheng-iccrg-delivery-rate-estimation). Rate-based controllers
/// consume these through on_rate_sample; loss-based controllers ignore them.
struct RateSample {
  double delivery_rate = 0.0;        ///< bytes/sec measured by this sample
  double btlbw = 0.0;                ///< windowed-max delivery rate (bytes/s)
  sim::Duration min_rtt = 0;         ///< windowed-min RTT (0 = no sample yet)
  sim::Time min_rtt_at = 0;          ///< when the current min was recorded
  std::uint64_t delivered = 0;       ///< total delivered after this ack
  std::uint64_t prior_delivered = 0; ///< total delivered when pkt was sent
  sim::Duration interval = 0;        ///< max(send elapsed, ack elapsed)
  sim::Duration rtt = 0;             ///< this ack's RTT sample (0 = none)
  std::size_t bytes_in_flight = 0;   ///< inflight after this ack landed
  bool is_app_limited = false;       ///< pkt sent while not cwnd-limited
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  virtual void on_packet_sent(std::size_t bytes, sim::Time now) = 0;
  /// `app_limited` is true when the acked packet was sent while the path
  /// was not cwnd-limited; RFC 9002 §7.8 forbids growing cwnd on such acks.
  virtual void on_ack(std::size_t bytes, sim::Time sent_time, sim::Time now,
                      sim::Duration srtt, bool app_limited = false) = 0;
  /// One congestion event per loss burst: `sent_time` of the newest lost pkt.
  virtual void on_loss_event(sim::Time sent_time, sim::Time now) = 0;
  /// Persistent congestion (RFC 9002 §7.6): collapse to minimum window.
  virtual void on_persistent_congestion(sim::Time now) = 0;

  /// Delivery-rate sample for an acked packet; called right after on_ack.
  /// Default: loss-based controllers don't model bandwidth.
  virtual void on_rate_sample(const RateSample& sample, sim::Time now) {
    (void)sample;
    (void)now;
  }

  virtual std::size_t cwnd_bytes() const = 0;
  virtual bool in_slow_start() const = 0;
  virtual std::string name() const = 0;

  /// Slow-start threshold, or SIZE_MAX while unset (telemetry export; maps
  /// to qlog recovery:metrics_updated's optional ssthresh field).
  virtual std::size_t ssthresh_bytes() const {
    return static_cast<std::size_t>(-1);
  }

  /// Bytes/sec the pacer should release at, or 0 when the controller has
  /// no opinion (the pacer then derives ~1.25 * cwnd / srtt itself).
  virtual std::uint64_t pacing_rate_bytes_per_sec() const { return 0; }

  /// Resets to the initial window (used by connection migration, which must
  /// restart congestion control on the new path -- the cost Fig. 13 shows).
  virtual void reset() = 0;
};

/// kCoupledLia needs per-connection shared state, so the Connection builds
/// it through make_lia_controller (quic/cc_coupled.h) rather than this
/// factory; the factory falls back to NewReno if asked directly.
enum class CcAlgorithm { kNewReno, kCubic, kCoupledLia, kBbr };

std::unique_ptr<CongestionController> make_congestion_controller(
    CcAlgorithm algo, std::size_t mss = kDefaultMss);

}  // namespace xlink::quic
