// Congestion controller interface. One instance per path ("decoupled"
// congestion control, the configuration the paper deploys for mobile
// multipath where Wi-Fi and cellular rarely share a bottleneck).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/time.h"

namespace xlink::quic {

constexpr std::size_t kDefaultMss = 1400;
constexpr std::size_t kInitialWindowPackets = 10;
constexpr std::size_t kMinWindowPackets = 2;

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  virtual void on_packet_sent(std::size_t bytes, sim::Time now) = 0;
  virtual void on_ack(std::size_t bytes, sim::Time sent_time, sim::Time now,
                      sim::Duration srtt) = 0;
  /// One congestion event per loss burst: `sent_time` of the newest lost pkt.
  virtual void on_loss_event(sim::Time sent_time, sim::Time now) = 0;
  /// Persistent congestion (RFC 9002 §7.6): collapse to minimum window.
  virtual void on_persistent_congestion(sim::Time now) = 0;

  virtual std::size_t cwnd_bytes() const = 0;
  virtual bool in_slow_start() const = 0;
  virtual std::string name() const = 0;

  /// Slow-start threshold, or SIZE_MAX while unset (telemetry export; maps
  /// to qlog recovery:metrics_updated's optional ssthresh field).
  virtual std::size_t ssthresh_bytes() const {
    return static_cast<std::size_t>(-1);
  }

  /// Resets to the initial window (used by connection migration, which must
  /// restart congestion control on the new path -- the cost Fig. 13 shows).
  virtual void reset() = 0;
};

/// kCoupledLia needs per-connection shared state, so the Connection builds
/// it through make_lia_controller (quic/cc_coupled.h) rather than this
/// factory; the factory falls back to NewReno if asked directly.
enum class CcAlgorithm { kNewReno, kCubic, kCoupledLia };

std::unique_ptr<CongestionController> make_congestion_controller(
    CcAlgorithm algo, std::size_t mss = kDefaultMss);

}  // namespace xlink::quic
