#include "quic/stream.h"

#include <algorithm>

namespace xlink::quic {

std::uint64_t SendStream::write(std::vector<std::uint8_t> data, bool fin) {
  const std::uint64_t offset = buffer_.size();
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  if (fin) fin_written_ = true;
  return offset;
}

void SendStream::set_frame_priority(std::uint64_t position, std::uint64_t size,
                                    int priority) {
  frame_priorities_.push_back({position, position + size, priority});
}

int SendStream::frame_priority_at(std::uint64_t offset) const {
  int best = 0;
  for (const auto& r : frame_priorities_)
    if (offset >= r.begin && offset < r.end) best = std::max(best, r.priority);
  return best;
}

std::vector<std::uint8_t> SendStream::read_range(std::uint64_t offset,
                                                 std::size_t len) const {
  const auto view = view_range(offset, len);
  return {view.begin(), view.end()};
}

std::span<const std::uint8_t> SendStream::view_range(std::uint64_t offset,
                                                     std::size_t len) const {
  if (offset >= buffer_.size()) return {};
  const std::size_t n =
      std::min<std::uint64_t>(len, buffer_.size() - offset);
  return {buffer_.data() + offset, n};
}

void SendStream::on_range_acked(std::uint64_t begin, std::uint64_t end) {
  acked_.add(begin, end);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> SendStream::unacked_within(
    std::uint64_t begin, std::uint64_t end) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  std::uint64_t cursor = begin;
  for (const auto& [b, e] : acked_.intervals()) {
    if (e <= cursor) continue;
    if (b >= end) break;
    if (b > cursor) out.emplace_back(cursor, std::min(b, end));
    cursor = std::max(cursor, e);
    if (cursor >= end) break;
  }
  if (cursor < end) out.emplace_back(cursor, end);
  return out;
}

bool SendStream::fully_acked() const {
  if (!fin_written_) return false;
  if (buffer_.empty()) return true;
  return acked_.contains(0, buffer_.size());
}

void RecvStream::on_data(std::uint64_t offset,
                         std::span<const std::uint8_t> data, bool fin) {
  if (fin) {
    const std::uint64_t fs = offset + data.size();
    if (!final_size_) final_size_ = fs;
  }
  if (!data.empty()) {
    // Count bytes we already had (duplicates from re-injection).
    for (const auto& [b, e] : received_.intervals()) {
      const std::uint64_t lo = std::max<std::uint64_t>(b, offset);
      const std::uint64_t hi =
          std::min<std::uint64_t>(e, offset + data.size());
      if (hi > lo) duplicate_bytes_ += hi - lo;
    }
    if (buffer_.size() < offset + data.size())
      buffer_.resize(offset + data.size());
    std::copy(data.begin(), data.end(),
              buffer_.begin() + static_cast<long>(offset));
    received_.add(offset, offset + data.size());
    if (max_gaps_ && received_.interval_count() > max_gaps_) {
      const std::uint64_t phantom = received_.collapse_to(max_gaps_);
      if (phantom > 0) {
        ++gap_collapses_;
        phantom_bytes_ += phantom;
      }
    }
  }
}

std::uint64_t RecvStream::readable_bytes() const {
  const std::uint64_t contiguous = received_.next_gap(0);
  return contiguous > read_offset_ ? contiguous - read_offset_ : 0;
}

std::vector<std::uint8_t> RecvStream::read(std::size_t max) {
  const std::uint64_t n = std::min<std::uint64_t>(max, readable_bytes());
  std::vector<std::uint8_t> out(
      buffer_.begin() + static_cast<long>(read_offset_),
      buffer_.begin() + static_cast<long>(read_offset_ + n));
  read_offset_ += n;
  return out;
}

}  // namespace xlink::quic
