#include "quic/packet.h"

namespace xlink::quic {
namespace {

constexpr std::uint8_t kLongHeaderByte = 0xc0;
constexpr std::uint8_t kShortHeaderByte = 0x40;

std::vector<std::uint8_t> encode_header(const PacketHeader& h) {
  Writer w;
  if (h.type == PacketType::kInitial) {
    w.u8(kLongHeaderByte);
    w.bytes(h.dcid);
    w.bytes(h.scid);
  } else {
    w.u8(kShortHeaderByte);
    w.bytes(h.dcid);
  }
  w.u32(h.cid_sequence);
  w.varint(h.packet_number);
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> seal_packet(const PacketProtection& aead,
                                      const PacketHeader& header,
                                      const std::vector<Frame>& frames) {
  Writer payload;
  for (const Frame& f : frames) encode_frame(f, payload);
  const std::vector<std::uint8_t> hdr = encode_header(header);
  std::vector<std::uint8_t> sealed = aead.seal(
      header.cid_sequence, header.packet_number, hdr, payload.data());
  std::vector<std::uint8_t> out = hdr;
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

std::optional<ReceivedPacket> parse_packet(
    std::span<const std::uint8_t> datagram) {
  Reader r(datagram);
  ReceivedPacket pkt;
  const auto first = r.u8();
  if (!first) return std::nullopt;
  if (*first == kLongHeaderByte) {
    pkt.header.type = PacketType::kInitial;
    if (!r.bytes_into(pkt.header.dcid)) return std::nullopt;
    if (!r.bytes_into(pkt.header.scid)) return std::nullopt;
  } else if (*first == kShortHeaderByte) {
    pkt.header.type = PacketType::kOneRtt;
    if (!r.bytes_into(pkt.header.dcid)) return std::nullopt;
  } else {
    return std::nullopt;
  }
  const auto seq = r.u32();
  const auto pn = r.varint();
  if (!seq || !pn) return std::nullopt;
  pkt.header.cid_sequence = *seq;
  pkt.header.packet_number = *pn;
  pkt.header_bytes.assign(datagram.begin(),
                          datagram.begin() + static_cast<long>(r.position()));
  pkt.ciphertext.assign(datagram.begin() + static_cast<long>(r.position()),
                        datagram.end());
  return pkt;
}

std::optional<std::vector<Frame>> open_packet(const PacketProtection& aead,
                                              const ReceivedPacket& pkt) {
  auto plaintext =
      aead.open(pkt.header.cid_sequence, pkt.header.packet_number,
                pkt.header_bytes, pkt.ciphertext);
  if (!plaintext) return std::nullopt;
  return parse_frames(*plaintext);
}

std::size_t header_size(PacketType type, PacketNumber pn) {
  const std::size_t base = (type == PacketType::kInitial) ? 1 + 8 + 8 : 1 + 8;
  return base + 4 + varint_size(pn);
}

}  // namespace xlink::quic
