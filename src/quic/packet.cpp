#include "quic/packet.h"

namespace xlink::quic {
namespace {

constexpr std::uint8_t kLongHeaderByte = 0xc0;
constexpr std::uint8_t kShortHeaderByte = 0x40;

template <typename W>
void encode_header_to(const PacketHeader& h, W& w) {
  if (h.type == PacketType::kInitial) {
    w.u8(kLongHeaderByte);
    w.bytes(h.dcid);
    w.bytes(h.scid);
  } else {
    w.u8(kShortHeaderByte);
    w.bytes(h.dcid);
  }
  w.u32(h.cid_sequence);
  w.varint(h.packet_number);
}

// Parses the header into `header`; returns the header length (the AAD
// boundary) or nullopt on malformed input.
std::optional<std::size_t> parse_header(std::span<const std::uint8_t> datagram,
                                        PacketHeader& header) {
  Reader r(datagram);
  const auto first = r.u8();
  if (!first) return std::nullopt;
  if (*first == kLongHeaderByte) {
    header.type = PacketType::kInitial;
    if (!r.bytes_into(header.dcid)) return std::nullopt;
    if (!r.bytes_into(header.scid)) return std::nullopt;
  } else if (*first == kShortHeaderByte) {
    header.type = PacketType::kOneRtt;
    if (!r.bytes_into(header.dcid)) return std::nullopt;
  } else {
    return std::nullopt;
  }
  const auto seq = r.u32();
  const auto pn = r.varint();
  if (!seq || !pn) return std::nullopt;
  header.cid_sequence = *seq;
  header.packet_number = *pn;
  return r.position();
}

}  // namespace

net::PacketBuffer seal_packet_buffer(const PacketProtection& aead,
                                     const PacketHeader& header,
                                     std::span<const Frame> frames) {
  net::PacketBuffer out =
      net::PacketBuffer::with_capacity(net::PacketBufferPool::kSlotCapacity);
  const auto write_all = [&](BufWriter& w) {
    encode_header_to(header, w);
    const std::size_t hdr = w.size();
    for (const Frame& f : frames) encode_frame(f, w);
    return hdr;
  };
  BufWriter w(out.data(), out.capacity() - kAeadTagSize);
  std::size_t hdr_len = write_all(w);
  if (w.overflowed()) {
    // Oversize packet (jumbo control bursts): size it exactly, then retry
    // into a standalone block.
    SizeWriter sz;
    encode_header_to(header, sz);
    for (const Frame& f : frames) encode_frame(f, sz);
    out = net::PacketBuffer::with_capacity(sz.size() + kAeadTagSize);
    w = BufWriter(out.data(), out.capacity() - kAeadTagSize);
    hdr_len = write_all(w);
  }
  const std::size_t total = w.size();
  aead.seal_in_place(header.cid_sequence, header.packet_number,
                     std::span<const std::uint8_t>(out.data(), hdr_len),
                     out.data() + hdr_len, total - hdr_len);
  out.resize(total + kAeadTagSize);
  return out;
}

std::vector<std::uint8_t> seal_packet(const PacketProtection& aead,
                                      const PacketHeader& header,
                                      const std::vector<Frame>& frames) {
  const net::PacketBuffer buf = seal_packet_buffer(aead, header, frames);
  return std::vector<std::uint8_t>(buf.begin(), buf.end());
}

std::optional<PacketView> parse_packet_view(std::span<std::uint8_t> datagram) {
  PacketView pkt;
  const auto hdr_len = parse_header(datagram, pkt.header);
  if (!hdr_len) return std::nullopt;
  pkt.header_bytes = std::span<const std::uint8_t>(datagram.first(*hdr_len));
  pkt.ciphertext = datagram.subspan(*hdr_len);
  return pkt;
}

std::optional<std::span<const std::uint8_t>> open_packet_in_place(
    const PacketProtection& aead, const PacketView& pkt) {
  const auto len =
      aead.open_in_place(pkt.header.cid_sequence, pkt.header.packet_number,
                         pkt.header_bytes, pkt.ciphertext);
  if (!len) return std::nullopt;
  return std::span<const std::uint8_t>(pkt.ciphertext.first(*len));
}

std::optional<ReceivedPacket> parse_packet(
    std::span<const std::uint8_t> datagram) {
  ReceivedPacket pkt;
  const auto hdr_len = parse_header(datagram, pkt.header);
  if (!hdr_len) return std::nullopt;
  pkt.header_bytes.assign(datagram.begin(),
                          datagram.begin() + static_cast<long>(*hdr_len));
  pkt.ciphertext.assign(datagram.begin() + static_cast<long>(*hdr_len),
                        datagram.end());
  return pkt;
}

std::optional<std::vector<Frame>> open_packet(const PacketProtection& aead,
                                              const ReceivedPacket& pkt) {
  auto plaintext =
      aead.open(pkt.header.cid_sequence, pkt.header.packet_number,
                pkt.header_bytes, pkt.ciphertext);
  if (!plaintext) return std::nullopt;
  return parse_frames(*plaintext);
}

std::size_t header_size(PacketType type, PacketNumber pn) {
  const std::size_t base = (type == PacketType::kInitial) ? 1 + 8 + 8 : 1 + 8;
  return base + 4 + varint_size(pn);
}

}  // namespace xlink::quic
