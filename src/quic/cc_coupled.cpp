#include "quic/cc_coupled.h"

#include <algorithm>
#include <cmath>

namespace xlink::quic {

double LiaGroup::alpha() const {
  double best_ratio = 0.0;  // max cwnd_i / rtt_i^2
  double denom = 0.0;       // sum cwnd_i / rtt_i
  std::size_t total = 0;
  for (const Member* m : members_) {
    if (!m || m->srtt_seconds <= 0.0 || m->cwnd == 0) continue;
    const double cwnd = static_cast<double>(m->cwnd);
    best_ratio = std::max(best_ratio,
                          cwnd / (m->srtt_seconds * m->srtt_seconds));
    denom += cwnd / m->srtt_seconds;
    total += m->cwnd;
  }
  if (denom <= 0.0 || total == 0) return 1.0;
  return static_cast<double>(total) * best_ratio / (denom * denom);
}

std::size_t LiaGroup::total_cwnd() const {
  std::size_t total = 0;
  for (const Member* m : members_)
    if (m) total += m->cwnd;
  return total;
}

namespace {

class LiaController final : public CongestionController {
 public:
  LiaController(std::shared_ptr<LiaGroup> group, std::size_t mss)
      : group_(std::move(group)), mss_(mss),
        cwnd_(kInitialWindowPackets * mss) {
    member_ = new LiaGroup::Member{cwnd_, 0.0};
    group_->members().push_back(member_);
  }

  ~LiaController() override {
    auto& v = group_->members();
    v.erase(std::remove(v.begin(), v.end(), member_), v.end());
    delete member_;
  }

  void on_packet_sent(std::size_t, sim::Time) override {}

  void on_ack(std::size_t bytes, sim::Time sent_time, sim::Time /*now*/,
              sim::Duration srtt, bool app_limited) override {
    member_->srtt_seconds = sim::to_seconds(srtt);
    // Sim time 0 is valid, so "no recovery yet" is a flag, not time 0.
    if (recovery_started_ && sent_time <= recovery_start_) {
      publish();
      return;
    }
    if (app_limited) {  // RFC 9002 §7.8: not cwnd-limited, no credit
      publish();
      return;
    }
    if (in_slow_start()) {
      cwnd_ += bytes;  // slow start is uncoupled (RFC 6356 §3)
      if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;  // exit AT ssthresh
      publish();
      return;
    }
    // Linked increase: min(alpha * acked * mss / total, acked * mss / cwnd),
    // accumulated fractionally.
    const double total = static_cast<double>(group_->total_cwnd());
    const double coupled =
        group_->alpha() * static_cast<double>(bytes) * mss_ /
        std::max(total, 1.0);
    const double uncoupled = static_cast<double>(bytes) * mss_ /
                             static_cast<double>(cwnd_);
    credit_ += std::min(coupled, uncoupled);
    if (credit_ >= 1.0) {
      const auto whole = static_cast<std::size_t>(credit_);
      cwnd_ += whole;
      credit_ -= static_cast<double>(whole);
    }
    publish();
  }

  void on_loss_event(sim::Time sent_time, sim::Time now) override {
    if (recovery_started_ && sent_time <= recovery_start_) return;
    recovery_started_ = true;
    recovery_start_ = now;
    ssthresh_ = std::max(cwnd_ / 2, kMinWindowPackets * mss_);
    cwnd_ = ssthresh_;
    credit_ = 0;
    publish();
  }

  void on_persistent_congestion(sim::Time now) override {
    recovery_started_ = true;
    recovery_start_ = now;
    cwnd_ = kMinWindowPackets * mss_;
    ssthresh_ = cwnd_;
    credit_ = 0;
    publish();
  }

  std::size_t cwnd_bytes() const override { return cwnd_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::size_t ssthresh_bytes() const override { return ssthresh_; }
  std::string name() const override { return "lia"; }

  void reset() override {
    cwnd_ = kInitialWindowPackets * mss_;
    ssthresh_ = SIZE_MAX;
    credit_ = 0;
    recovery_start_ = 0;
    recovery_started_ = false;
    publish();
  }

 private:
  void publish() { member_->cwnd = cwnd_; }

  std::shared_ptr<LiaGroup> group_;
  LiaGroup::Member* member_;
  std::size_t mss_;
  std::size_t cwnd_;
  std::size_t ssthresh_ = SIZE_MAX;
  double credit_ = 0.0;
  sim::Time recovery_start_ = 0;
  bool recovery_started_ = false;
};

}  // namespace

std::unique_ptr<CongestionController> make_lia_controller(
    std::shared_ptr<LiaGroup> group, std::size_t mss) {
  return std::make_unique<LiaController>(std::move(group), mss);
}

}  // namespace xlink::quic
