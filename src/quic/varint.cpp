#include "quic/varint.h"

#include <cstdio>

namespace xlink::quic {

std::size_t varint_size(std::uint64_t v) {
  if (v < (1ULL << 6)) return 1;
  if (v < (1ULL << 14)) return 2;
  if (v < (1ULL << 30)) return 4;
  return 8;
}

void varint_encode(std::uint64_t v, std::vector<std::uint8_t>& out) {
  switch (varint_size(v)) {
    case 1:
      out.push_back(static_cast<std::uint8_t>(v));
      break;
    case 2:
      out.push_back(static_cast<std::uint8_t>(0x40 | (v >> 8)));
      out.push_back(static_cast<std::uint8_t>(v));
      break;
    case 4:
      out.push_back(static_cast<std::uint8_t>(0x80 | (v >> 24)));
      out.push_back(static_cast<std::uint8_t>(v >> 16));
      out.push_back(static_cast<std::uint8_t>(v >> 8));
      out.push_back(static_cast<std::uint8_t>(v));
      break;
    default:
      out.push_back(static_cast<std::uint8_t>(0xc0 | (v >> 56)));
      for (int shift = 48; shift >= 0; shift -= 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
      break;
  }
}

std::size_t varint_encode_to(std::uint64_t v, std::uint8_t* out) {
  const std::size_t len = varint_size(v);
  switch (len) {
    case 1:
      out[0] = static_cast<std::uint8_t>(v);
      break;
    case 2:
      out[0] = static_cast<std::uint8_t>(0x40 | (v >> 8));
      out[1] = static_cast<std::uint8_t>(v);
      break;
    case 4:
      out[0] = static_cast<std::uint8_t>(0x80 | (v >> 24));
      out[1] = static_cast<std::uint8_t>(v >> 16);
      out[2] = static_cast<std::uint8_t>(v >> 8);
      out[3] = static_cast<std::uint8_t>(v);
      break;
    default:
      out[0] = static_cast<std::uint8_t>(0xc0 | (v >> 56));
      for (int i = 1; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
      break;
  }
  return len;
}

void Writer::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void BufWriter::u32(std::uint32_t v) {
  if (!fits(4)) return;
  data_[pos_++] = static_cast<std::uint8_t>(v >> 24);
  data_[pos_++] = static_cast<std::uint8_t>(v >> 16);
  data_[pos_++] = static_cast<std::uint8_t>(v >> 8);
  data_[pos_++] = static_cast<std::uint8_t>(v);
}

void BufWriter::bytes(std::span<const std::uint8_t> data) {
  if (!fits(data.size())) return;
  for (std::size_t i = 0; i < data.size(); ++i) data_[pos_ + i] = data[i];
  pos_ += data.size();
}

std::optional<std::uint8_t> Reader::u8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint32_t> Reader::u32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

std::optional<std::uint64_t> Reader::varint() {
  if (remaining() < 1) return std::nullopt;
  const std::uint8_t first = data_[pos_];
  const std::size_t len = static_cast<std::size_t>(1) << (first >> 6);
  if (remaining() < len) return std::nullopt;
  std::uint64_t v = first & 0x3f;
  ++pos_;
  for (std::size_t i = 1; i < len; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

std::optional<std::vector<std::uint8_t>> Reader::bytes(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return out;
}

std::optional<std::span<const std::uint8_t>> Reader::view(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  std::span<const std::uint8_t> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

bool Reader::bytes_into(std::span<std::uint8_t> out) {
  if (remaining() < out.size()) return false;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = data_[pos_ + i];
  pos_ += out.size();
  return true;
}

}  // namespace xlink::quic
