// CUBIC congestion control (RFC 8312 window growth with RFC 9002 loss
// handling). Cubic is the algorithm the paper's experiments run.
#include <algorithm>
#include <cmath>

#include "quic/cc.h"

namespace xlink::quic {

namespace {

constexpr double kCubicC = 0.4;         // scaling constant, RFC 8312
constexpr double kCubicBeta = 0.7;      // multiplicative decrease

class Cubic final : public CongestionController {
 public:
  explicit Cubic(std::size_t mss)
      : mss_(mss), cwnd_(kInitialWindowPackets * mss) {}

  void on_packet_sent(std::size_t, sim::Time) override {}

  void on_ack(std::size_t bytes, sim::Time sent_time, sim::Time now,
              sim::Duration srtt, bool app_limited) override {
    // Sim time 0 is valid, so "no recovery yet" is a flag, not time 0.
    if (recovery_started_ && sent_time <= recovery_start_) return;
    if (app_limited) return;  // RFC 9002 §7.8: not cwnd-limited, no credit
    if (in_slow_start()) {
      cwnd_ += bytes;
      // Exit slow start AT ssthresh so the first cubic epoch anchors at the
      // estimated safe point, not past it.
      if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
      return;
    }
    // Sim time 0 is a valid epoch start; an == 0 sentinel would re-run
    // begin_epoch on every ack at t=0, resetting reno_credit_ and k_.
    if (!epoch_started_) begin_epoch(now);
    // Cubic target window (in bytes) at time t + srtt since the epoch.
    const double t = sim::to_seconds(now + srtt - epoch_start_);
    const double target_bytes =
        (kCubicC * std::pow(t - k_, 3.0) + w_max_mss_) *
        static_cast<double>(mss_);
    const double cwnd = static_cast<double>(cwnd_);
    // Increment credited for `bytes` acked: (target - cwnd) spread over one
    // window of acks when above target, a small probe floor when below.
    double incr;
    if (target_bytes > cwnd) {
      incr = (target_bytes - cwnd) * static_cast<double>(bytes) / cwnd;
    } else {
      incr = 0.01 * static_cast<double>(mss_) *
             static_cast<double>(bytes) / cwnd;
    }
    // Reno-friendly region (RFC 8312 §4.2): never grow slower than the AIMD
    // estimate W_est.
    reno_credit_ += bytes;
    const double w_est_bytes =
        (w_est_start_mss_ +
         3.0 * (1.0 - kCubicBeta) / (1.0 + kCubicBeta) *
             (static_cast<double>(reno_credit_) / cwnd)) *
        static_cast<double>(mss_);
    if (w_est_bytes > cwnd + incr) incr = w_est_bytes - cwnd;

    cwnd_fraction_ += incr;
    if (cwnd_fraction_ >= 1.0) {
      const auto whole = static_cast<std::size_t>(cwnd_fraction_);
      cwnd_ += whole;
      cwnd_fraction_ -= static_cast<double>(whole);
    }
  }

  void on_loss_event(sim::Time sent_time, sim::Time now) override {
    if (recovery_started_ && sent_time <= recovery_start_) return;
    recovery_started_ = true;
    recovery_start_ = now;
    // Fast convergence (RFC 8312 §4.6).
    const double cwnd_mss = static_cast<double>(cwnd_) / mss_;
    if (cwnd_mss < w_max_mss_) {
      w_max_mss_ = cwnd_mss * (1.0 + kCubicBeta) / 2.0;
    } else {
      w_max_mss_ = cwnd_mss;
    }
    cwnd_ = std::max(static_cast<std::size_t>(cwnd_ * kCubicBeta),
                     kMinWindowPackets * mss_);
    ssthresh_ = cwnd_;
    epoch_started_ = false;
  }

  void on_persistent_congestion(sim::Time now) override {
    recovery_started_ = true;
    recovery_start_ = now;
    // RFC 9002 §7.6.2: collapse cwnd to the minimum but keep ssthresh (and
    // cubic's W_max memory), so the path slow-starts back toward the last
    // known safe operating point instead of crawling there linearly.
    cwnd_ = kMinWindowPackets * mss_;
    epoch_started_ = false;
  }

  std::size_t cwnd_bytes() const override { return cwnd_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::size_t ssthresh_bytes() const override { return ssthresh_; }
  std::string name() const override { return "cubic"; }

  void reset() override {
    cwnd_ = kInitialWindowPackets * mss_;
    ssthresh_ = SIZE_MAX;
    w_max_mss_ = 0;
    epoch_start_ = 0;
    epoch_started_ = false;
    recovery_start_ = 0;
    recovery_started_ = false;
    cwnd_fraction_ = 0;
    reno_credit_ = 0;
  }

 private:
  void begin_epoch(sim::Time now) {
    epoch_start_ = now;
    epoch_started_ = true;
    const double cwnd_mss = static_cast<double>(cwnd_) / mss_;
    if (w_max_mss_ < cwnd_mss) w_max_mss_ = cwnd_mss;
    // K = cubic_root(W_max * (1 - beta) / C).
    k_ = std::cbrt(w_max_mss_ * (1.0 - kCubicBeta) / kCubicC);
    w_est_start_mss_ = cwnd_mss;
    reno_credit_ = 0;
  }

  std::size_t mss_;
  std::size_t cwnd_;
  std::size_t ssthresh_ = SIZE_MAX;
  double w_max_mss_ = 0.0;
  double k_ = 0.0;
  double w_est_start_mss_ = 0.0;
  std::uint64_t reno_credit_ = 0;
  sim::Time epoch_start_ = 0;
  bool epoch_started_ = false;
  sim::Time recovery_start_ = 0;
  bool recovery_started_ = false;
  double cwnd_fraction_ = 0.0;
};

}  // namespace

std::unique_ptr<CongestionController> make_newreno(std::size_t mss);
std::unique_ptr<CongestionController> make_bbr(std::size_t mss);

std::unique_ptr<CongestionController> make_congestion_controller(
    CcAlgorithm algo, std::size_t mss) {
  switch (algo) {
    case CcAlgorithm::kNewReno:
      return make_newreno(mss);
    case CcAlgorithm::kCubic:
      return std::make_unique<Cubic>(mss);
    case CcAlgorithm::kBbr:
      return make_bbr(mss);
    case CcAlgorithm::kCoupledLia:
      break;  // needs shared state; see quic/cc_coupled.h
  }
  return make_newreno(mss);
}

}  // namespace xlink::quic
