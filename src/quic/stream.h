// QUIC stream state, send and receive sides.
//
// The connection owns the packetization queue (the paper's pkt_send_q);
// streams own their byte buffers, retransmission source data, ack state and
// reassembly. XLINK's stream_send API attaches priorities at two levels:
// per-stream priority (early chunk streams outrank later ones) and
// per-range "video frame" priority inside a stream (the first video frame
// of a short video outranks the rest of its stream).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

#include "quic/interval_set.h"
#include "quic/types.h"

namespace xlink::quic {

/// Priority attached to a byte range by the application (higher wins).
/// Video frame priorities per the paper's stream_send(position, size) API.
struct FramePriorityRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // half-open
  int priority = 0;
};

class SendStream {
 public:
  explicit SendStream(StreamId id) : id_(id) {}

  StreamId id() const { return id_; }

  /// Appends data; returns the offset at which it was placed.
  std::uint64_t write(std::vector<std::uint8_t> data, bool fin);

  /// Marks [position, position+size) with a video-frame priority; the
  /// paper's stream_send API for first-video-frame acceleration.
  void set_frame_priority(std::uint64_t position, std::uint64_t size,
                          int priority);

  /// Video-frame priority of the byte at `offset` (0 = default).
  int frame_priority_at(std::uint64_t offset) const;

  /// Stream-level priority; smaller stream ids default to higher priority
  /// (earlier chunks of a video play first). Higher value wins.
  int priority() const { return priority_; }
  void set_priority(int p) { priority_ = p; }

  /// Copies [offset, offset+len); clamps to written data.
  std::vector<std::uint8_t> read_range(std::uint64_t offset,
                                       std::size_t len) const;

  /// Borrowed view of [offset, offset+len), clamped to written data. Valid
  /// until the next write(); the send path seals the packet synchronously,
  /// so it never holds the view across a mutation.
  std::span<const std::uint8_t> view_range(std::uint64_t offset,
                                           std::size_t len) const;

  void on_range_acked(std::uint64_t begin, std::uint64_t end);
  bool range_acked(std::uint64_t begin, std::uint64_t end) const {
    return acked_.contains(begin, end);
  }

  /// Subranges of [begin, end) not yet acknowledged; what retransmission
  /// and re-injection actually need to duplicate.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> unacked_within(
      std::uint64_t begin, std::uint64_t end) const;

  std::uint64_t total_written() const { return buffer_.size(); }
  bool fin_written() const { return fin_written_; }
  std::uint64_t acked_bytes() const { return acked_.covered_bytes(); }

  /// All data (and fin, if written) acknowledged.
  bool fully_acked() const;

 private:
  StreamId id_;
  int priority_ = 0;
  std::vector<std::uint8_t> buffer_;
  bool fin_written_ = false;
  IntervalSet acked_;
  std::vector<FramePriorityRange> frame_priorities_;
};

class RecvStream {
 public:
  explicit RecvStream(StreamId id) : id_(id) {}

  StreamId id() const { return id_; }

  /// Ingests a STREAM frame payload (borrowed from the receive buffer on
  /// the hot path). Duplicate/overlapping ranges are fine (re-injected
  /// packets arrive as duplicates by design).
  void on_data(std::uint64_t offset, std::span<const std::uint8_t> data,
               bool fin);
  void on_data(std::uint64_t offset, std::initializer_list<std::uint8_t> data,
               bool fin) {
    on_data(offset, std::span<const std::uint8_t>(data.begin(), data.size()),
            fin);
  }

  /// Contiguous bytes available past the read offset.
  std::uint64_t readable_bytes() const;

  /// Consumes up to `max` readable bytes.
  std::vector<std::uint8_t> read(std::size_t max);

  /// Total contiguously received prefix length.
  std::uint64_t contiguous_received() const { return received_.next_gap(0); }

  std::uint64_t read_offset() const { return read_offset_; }
  std::optional<std::uint64_t> final_size() const { return final_size_; }

  /// Stream fully received and fully consumed.
  bool finished() const {
    return final_size_ && read_offset_ == *final_size_;
  }

  /// Fully received (regardless of how much the app has read).
  bool fully_received() const {
    return final_size_ && contiguous_received() >= *final_size_;
  }

  /// Bytes received more than once (redundancy accounting).
  std::uint64_t duplicate_bytes() const { return duplicate_bytes_; }

  /// Caps reassembly fragmentation (hostile-peer hardening): whenever the
  /// tracked interval count exceeds `n`, the smallest gap is collapsed and
  /// its bytes read as phantom zeros until -- if ever -- the real data
  /// arrives and overwrites them (on_data copies unconditionally). Only an
  /// adversarial spray reaches the cap; 0 = unlimited.
  void set_max_gaps(std::size_t n) { max_gaps_ = n; }
  std::uint64_t gap_collapses() const { return gap_collapses_; }
  std::uint64_t phantom_bytes() const { return phantom_bytes_; }
  std::size_t tracked_intervals() const { return received_.interval_count(); }

 private:
  StreamId id_;
  std::vector<std::uint8_t> buffer_;
  IntervalSet received_;
  std::uint64_t read_offset_ = 0;
  std::optional<std::uint64_t> final_size_;
  std::uint64_t duplicate_bytes_ = 0;
  std::size_t max_gaps_ = 0;
  std::uint64_t gap_collapses_ = 0;
  std::uint64_t phantom_bytes_ = 0;
};

}  // namespace xlink::quic
