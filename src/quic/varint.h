// RFC 9000 variable-length integer encoding plus byte-buffer reader/writer.
//
// All frames and packet headers serialize through these helpers so wire
// sizes are authentic (they feed congestion control and pacing).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace xlink::quic {

/// Largest value representable as a QUIC varint (2^62 - 1).
constexpr std::uint64_t kVarintMax = (1ULL << 62) - 1;

/// Number of bytes the varint encoding of `v` occupies (1, 2, 4 or 8).
std::size_t varint_size(std::uint64_t v);

/// Appends the varint encoding of `v` to `out`. `v` must be <= kVarintMax.
void varint_encode(std::uint64_t v, std::vector<std::uint8_t>& out);

/// Writes the varint encoding of `v` at `out` (which must have room for
/// varint_size(v) bytes); returns the encoded length.
std::size_t varint_encode_to(std::uint64_t v, std::uint8_t* out);

/// Serialization cursor over a growing byte vector.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void varint(std::uint64_t v) { varint_encode(v, buf_); }
  void bytes(std::span<const std::uint8_t> data);

  void reserve(std::size_t n) { buf_.reserve(n); }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Serialization cursor over caller-owned storage (a pooled packet
/// buffer). Writes never allocate; running past `capacity` latches the
/// overflow flag and discards further bytes, which the caller checks once
/// after encoding instead of per write.
class BufWriter {
 public:
  BufWriter(std::uint8_t* data, std::size_t capacity)
      : data_(data), capacity_(capacity) {}

  void u8(std::uint8_t v) {
    if (!fits(1)) return;
    data_[pos_++] = v;
  }
  void u32(std::uint32_t v);
  void varint(std::uint64_t v) {
    if (!fits(varint_size(v))) return;
    pos_ += varint_encode_to(v, data_ + pos_);
  }
  void bytes(std::span<const std::uint8_t> data);

  std::size_t size() const { return pos_; }
  bool overflowed() const { return overflowed_; }

 private:
  bool fits(std::size_t n) {
    if (capacity_ - pos_ < n) {
      overflowed_ = true;
      return false;
    }
    return true;
  }

  std::uint8_t* data_;
  std::size_t capacity_;
  std::size_t pos_ = 0;
  bool overflowed_ = false;
};

/// Counting writer: measures encoded size without touching memory, for
/// exact preallocation and allocation-free frame_wire_size().
class SizeWriter {
 public:
  void u8(std::uint8_t) { ++size_; }
  void u32(std::uint32_t) { size_ += 4; }
  void varint(std::uint64_t v) { size_ += varint_size(v); }
  void bytes(std::span<const std::uint8_t> data) { size_ += data.size(); }

  std::size_t size() const { return size_; }

 private:
  std::size_t size_ = 0;
};

/// Parsing cursor over a byte span. All reads return nullopt on underrun,
/// never throwing: malformed network input is data, not a programming error.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> varint();
  /// Reads exactly `n` bytes.
  std::optional<std::vector<std::uint8_t>> bytes(std::size_t n);
  /// Copies `n` bytes into `out` (avoids an allocation).
  bool bytes_into(std::span<std::uint8_t> out);
  /// Borrows `n` bytes without copying; the view shares the Reader's
  /// underlying storage.
  std::optional<std::span<const std::uint8_t>> view(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace xlink::quic
