// RFC 9000 variable-length integer encoding plus byte-buffer reader/writer.
//
// All frames and packet headers serialize through these helpers so wire
// sizes are authentic (they feed congestion control and pacing).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace xlink::quic {

/// Largest value representable as a QUIC varint (2^62 - 1).
constexpr std::uint64_t kVarintMax = (1ULL << 62) - 1;

/// Number of bytes the varint encoding of `v` occupies (1, 2, 4 or 8).
std::size_t varint_size(std::uint64_t v);

/// Appends the varint encoding of `v` to `out`. `v` must be <= kVarintMax.
void varint_encode(std::uint64_t v, std::vector<std::uint8_t>& out);

/// Serialization cursor over a growing byte vector.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void varint(std::uint64_t v) { varint_encode(v, buf_); }
  void bytes(std::span<const std::uint8_t> data);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Parsing cursor over a byte span. All reads return nullopt on underrun,
/// never throwing: malformed network input is data, not a programming error.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> varint();
  /// Reads exactly `n` bytes.
  std::optional<std::vector<std::uint8_t>> bytes(std::size_t n);
  /// Copies `n` bytes into `out` (avoids an allocation).
  bool bytes_into(std::span<std::uint8_t> out);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace xlink::quic
