#include "quic/loss_detection.h"

#include <algorithm>

namespace xlink::quic {

void LossDetection::on_packet_sent(PacketNumber pn, sim::Time now,
                                   std::size_t bytes, bool ack_eliciting) {
  sent_.emplace(pn, Meta{now, bytes, ack_eliciting});
  if (ack_eliciting) bytes_in_flight_ += bytes;
}

sim::Duration LossDetection::time_threshold(const RttEstimator& rtt) const {
  const sim::Duration base = std::max(rtt.smoothed(), rtt.latest());
  return std::max<sim::Duration>(
      base * kTimeThresholdNum / kTimeThresholdDen, sim::kMillisecond);
}

LossDetection::AckOutcome LossDetection::on_ack_received(
    const AckInfo& info, sim::Time now, const RttEstimator& rtt) {
  AckOutcome out;
  if (info.ranges.empty()) return out;
  const PacketNumber largest = info.largest_acked();

  for (const AckRange& range : info.ranges) {
    auto it = sent_.lower_bound(range.first);
    while (it != sent_.end() && it->first <= range.last) {
      const Meta& m = it->second;
      out.newly_acked.push_back(it->first);
      out.acked_bytes += m.ack_eliciting ? m.bytes : 0;
      if (m.ack_eliciting) bytes_in_flight_ -= m.bytes;
      if (it->first == largest) {
        out.largest_acked_sent_time = m.sent_time;
        if (m.ack_eliciting)
          out.rtt_sample = now >= m.sent_time ? now - m.sent_time : 0;
      }
      it = sent_.erase(it);
    }
  }
  if (largest > largest_acked_ || !any_acked_) {
    largest_acked_ = std::max(largest_acked_, largest);
    any_acked_ = true;
  }
  out.lost = detect_losses(now, rtt);
  return out;
}

std::vector<LostPacket> LossDetection::detect_losses(
    sim::Time now, const RttEstimator& rtt) {
  std::vector<LostPacket> lost;
  if (!any_acked_) return lost;
  const sim::Duration threshold = time_threshold(rtt);
  for (auto it = sent_.begin(); it != sent_.end();) {
    const PacketNumber pn = it->first;
    if (pn >= largest_acked_) break;  // nothing newer acked: can't judge yet
    const Meta& m = it->second;
    const bool by_count = largest_acked_ >= pn + kPacketThreshold;
    const bool by_time = m.sent_time + threshold <= now;
    if (by_count || by_time) {
      lost.push_back({pn, by_count ? LossReason::kPacketThreshold
                                   : LossReason::kTimeThreshold});
      if (m.ack_eliciting) bytes_in_flight_ -= m.bytes;
      it = sent_.erase(it);
    } else {
      ++it;
    }
  }
  return lost;
}

std::optional<sim::Time> LossDetection::loss_time(
    const RttEstimator& rtt) const {
  if (!any_acked_) return std::nullopt;
  const sim::Duration threshold = time_threshold(rtt);
  std::optional<sim::Time> earliest;
  for (const auto& [pn, m] : sent_) {
    if (pn >= largest_acked_) break;
    const sim::Time t = m.sent_time + threshold;
    if (!earliest || t < *earliest) earliest = t;
  }
  return earliest;
}

std::optional<sim::Time> LossDetection::oldest_unacked_sent_time() const {
  std::optional<sim::Time> earliest;
  for (const auto& [pn, m] : sent_) {
    if (!m.ack_eliciting) continue;
    if (!earliest || m.sent_time < *earliest) earliest = m.sent_time;
  }
  return earliest;
}

bool LossDetection::has_ack_eliciting_in_flight() const {
  return std::any_of(sent_.begin(), sent_.end(),
                     [](const auto& kv) { return kv.second.ack_eliciting; });
}

void LossDetection::forget(PacketNumber pn) {
  auto it = sent_.find(pn);
  if (it == sent_.end()) return;
  if (it->second.ack_eliciting) bytes_in_flight_ -= it->second.bytes;
  sent_.erase(it);
}

void LossDetection::clear_in_flight() {
  sent_.clear();
  bytes_in_flight_ = 0;
}

sim::Duration backed_off_pto(sim::Duration base_pto,
                             std::uint32_t pto_count) {
  const sim::Duration raw =
      base_pto << std::min(pto_count, kMaxPtoBackoffShift);
  return std::min(raw, kMaxPto);
}

}  // namespace xlink::quic
