#include "quic/pacer.h"

#include <algorithm>

namespace xlink::quic {

void Pacer::set_rate(std::uint64_t bytes_per_sec) {
  rate_ = bytes_per_sec;
}

void Pacer::refill(sim::Time now) {
  if (!primed_) {
    // First use: start with a full bucket so the initial window leaves
    // unpaced (standard warm-up; there is no rate estimate yet anyway).
    tokens_ = static_cast<std::int64_t>(config_.burst_bytes);
    last_refill_ = now;
    primed_ = true;
    return;
  }
  if (now <= last_refill_) return;
  const sim::Duration elapsed = now - last_refill_;
  // Integer bytes earned; the remainder stays in the elapsed clock by
  // advancing last_refill_ only by the time actually converted, so no
  // credit is ever lost to rounding (determinism + exact long-run rate).
  const std::uint64_t earned = (elapsed * rate_) / 1000000;
  if (earned == 0) return;
  const sim::Duration used =
      static_cast<sim::Duration>((earned * 1000000) / rate_);
  last_refill_ += std::max<sim::Duration>(used, 1);
  tokens_ = std::min<std::int64_t>(
      tokens_ + static_cast<std::int64_t>(earned),
      static_cast<std::int64_t>(config_.burst_bytes));
}

bool Pacer::can_send(sim::Time now) {
  if (!enabled()) return true;
  refill(now);
  return tokens_ >= 0;
}

void Pacer::on_sent(sim::Time now, std::size_t bytes) {
  if (!enabled()) return;
  refill(now);
  tokens_ -= static_cast<std::int64_t>(bytes);
}

sim::Time Pacer::next_release_time(sim::Time now) const {
  if (!enabled() || !primed_) return now;
  // Project the balance forward without mutating state (const: callers
  // probe release times while arming timers).
  std::int64_t tokens = tokens_;
  if (now > last_refill_)
    tokens += static_cast<std::int64_t>(((now - last_refill_) * rate_) /
                                        1000000);
  tokens = std::min<std::int64_t>(
      tokens, static_cast<std::int64_t>(config_.burst_bytes));
  if (tokens >= 0) return now;
  // Quantum floor: mature at least a quantum's worth of credit per timer
  // release so a near-zero debt doesn't schedule a wakeup per byte.
  const std::uint64_t needed = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(-tokens), config_.quantum_bytes);
  const std::uint64_t wait_us = (needed * 1000000 + rate_ - 1) / rate_;
  return now + static_cast<sim::Duration>(std::max<std::uint64_t>(wait_us, 1));
}

void Pacer::reset() {
  rate_ = 0;
  tokens_ = 0;
  last_refill_ = 0;
  primed_ = false;
}

}  // namespace xlink::quic
