#include "quic/delivery_rate.h"

#include <algorithm>

namespace xlink::quic {

void DeliveryRateSampler::on_packet_sent(RateStamp& stamp, sim::Time now,
                                         std::size_t inflight_before) {
  if (!anchored_ || inflight_before == 0) {
    // Flight restart: nothing in the network, so the delivery clock and
    // the first-sent clock both re-anchor here. Without this an idle gap
    // would be counted as transmission time and crater the next sample.
    first_sent_time_ = now;
    delivered_time_ = now;
    anchored_ = true;
  }
  stamp.delivered = delivered_;
  stamp.delivered_time = delivered_time_;
  stamp.first_sent_time = first_sent_time_;
  stamp.is_app_limited = app_limited_until_ != 0;
  stamp.valid = true;
}

void DeliveryRateSampler::on_app_limited(std::size_t inflight_bytes) {
  // Everything currently in flight was sent while there was more cwnd than
  // data; samples from those packets must not lower the bandwidth estimate.
  // The marker is at least 1 so "app-limited from the very first byte"
  // (delivered_ == 0, nothing in flight) still registers.
  app_limited_until_ = std::max<std::uint64_t>(
      delivered_ + static_cast<std::uint64_t>(inflight_bytes), 1);
}

RateSample DeliveryRateSampler::on_ack(const RateStamp& stamp,
                                       std::size_t bytes, sim::Time sent_time,
                                       sim::Time now, sim::Duration rtt,
                                       std::size_t inflight_after) {
  RateSample sample;
  sample.prior_delivered = stamp.valid ? stamp.delivered : delivered_;

  delivered_ += static_cast<std::uint64_t>(bytes);
  delivered_time_ = now;
  // First-sent clock advances to this packet's send time: the next sample's
  // send interval starts where this packet's transmission ended.
  first_sent_time_ = std::max(first_sent_time_, sent_time);

  // Drain the app-limited marker once every packet sent during the limited
  // phase has left the network.
  if (app_limited_until_ != 0 && delivered_ > app_limited_until_)
    app_limited_until_ = 0;

  // Round accounting: this ack closes a round if the packet was sent at or
  // after the previous round's delivered mark.
  if (stamp.valid && stamp.delivered >= next_round_delivered_) {
    next_round_delivered_ = delivered_;
    ++round_count_;
  }

  sample.delivered = delivered_;
  sample.rtt = rtt;
  sample.bytes_in_flight = inflight_after;
  sample.is_app_limited = stamp.valid ? stamp.is_app_limited : true;

  if (stamp.valid) {
    const sim::Duration send_elapsed =
        sent_time > stamp.first_sent_time ? sent_time - stamp.first_sent_time
                                          : 0;
    const sim::Duration ack_elapsed =
        now > stamp.delivered_time ? now - stamp.delivered_time : 0;
    sample.interval = std::max(send_elapsed, ack_elapsed);
    if (sample.interval > 0) {
      sample.delivery_rate =
          static_cast<double>(delivered_ - stamp.delivered) /
          sim::to_seconds(sample.interval);
      update_btlbw(sample.delivery_rate, sample.is_app_limited);
    }
  }
  if (rtt > 0) update_min_rtt(rtt, now);

  sample.btlbw = btlbw_bytes_per_sec();
  sample.min_rtt = min_rtt_;
  sample.min_rtt_at = min_rtt_at_;
  return sample;
}

void DeliveryRateSampler::on_loss(std::size_t bytes) {
  // Lost bytes never count as delivered, but a flight whose tail is lost
  // must still drain the app-limited marker: shrink it by the lost bytes
  // so the phase ends once the surviving packets are acked.
  if (app_limited_until_ > 1) {
    const auto lost = static_cast<std::uint64_t>(bytes);
    app_limited_until_ =
        app_limited_until_ > lost + 1 ? app_limited_until_ - lost : 1;
  }
}

double DeliveryRateSampler::btlbw_bytes_per_sec() const {
  return bw_[0].rate;
}

void DeliveryRateSampler::update_btlbw(double rate, bool app_limited) {
  // App-limited samples underestimate the path; only let them through when
  // they still beat the current maximum.
  if (app_limited && rate <= bw_[0].rate) return;

  const std::uint64_t round = round_count_;
  if (rate >= bw_[0].rate) {
    bw_[2] = bw_[1];
    bw_[1] = bw_[0];
    bw_[0] = {rate, round};
  } else if (rate >= bw_[1].rate) {
    bw_[2] = bw_[1];
    bw_[1] = {rate, round};
  } else if (rate >= bw_[2].rate) {
    bw_[2] = {rate, round};
  }

  // Age out the maximum once it is older than the filter window, promoting
  // the runners-up (and re-seeding them with the newest sample so the
  // filter never empties while samples keep arriving).
  if (bw_[0].round + kBwFilterRounds < round) {
    bw_[0] = bw_[1];
    bw_[1] = bw_[2];
    bw_[2] = {rate, round};
    if (bw_[0].round + kBwFilterRounds < round) {
      bw_[0] = bw_[1];
      bw_[1] = bw_[2];
      bw_[2] = {rate, round};
    }
    if (bw_[0].round + kBwFilterRounds < round) bw_[0] = {rate, round};
  }
}

void DeliveryRateSampler::update_min_rtt(sim::Duration rtt, sim::Time now) {
  const bool expired = min_rtt_at_ + kMinRttWindow < now;
  if (min_rtt_ == 0 || rtt <= min_rtt_ || expired) {
    min_rtt_ = rtt;
    min_rtt_at_ = now;
  }
}

void DeliveryRateSampler::reset() {
  delivered_ = 0;
  delivered_time_ = 0;
  first_sent_time_ = 0;
  anchored_ = false;
  app_limited_until_ = 0;
  round_count_ = 0;
  next_round_delivered_ = 0;
  bw_[0] = bw_[1] = bw_[2] = {};
  min_rtt_ = 0;
  min_rtt_at_ = 0;
}

}  // namespace xlink::quic
