#include "quic/rtt.h"

#include <algorithm>
#include <cstdint>

namespace xlink::quic {

void RttEstimator::on_sample(sim::Duration latest, sim::Duration ack_delay) {
  latest_ = latest;
  if (!has_sample_) {
    has_sample_ = true;
    min_rtt_ = latest;
    srtt_ = latest;
    rttvar_ = latest / 2;
    return;
  }
  min_rtt_ = std::min(min_rtt_, latest);
  // RFC 9002 §5.3: the peer cannot claim more delay than it negotiated.
  const sim::Duration delay = std::min(ack_delay, max_ack_delay_);
  // Subtract ack delay only when the result stays above min_rtt.
  sim::Duration adjusted = latest;
  if (adjusted >= min_rtt_ + delay) adjusted -= delay;
  const auto s = static_cast<std::int64_t>(srtt_);
  const auto a = static_cast<std::int64_t>(adjusted);
  const std::int64_t sample_var = s > a ? s - a : a - s;
  rttvar_ = static_cast<sim::Duration>(
      (3 * static_cast<std::int64_t>(rttvar_) + sample_var) / 4);
  srtt_ = static_cast<sim::Duration>((7 * s + a) / 8);
}

sim::Duration RttEstimator::pto(sim::Duration max_ack_delay) const {
  return srtt_ + std::max<sim::Duration>(4 * rttvar_, sim::kMillisecond) +
         max_ack_delay;
}

}  // namespace xlink::quic
