#include "quic/frame.h"

#include <algorithm>

namespace xlink::quic {
namespace {

// RFC 9000 frame type codes used here.
constexpr std::uint64_t kTypePadding = 0x00;
constexpr std::uint64_t kTypePing = 0x01;
constexpr std::uint64_t kTypeAck = 0x02;
constexpr std::uint64_t kTypeResetStream = 0x04;
constexpr std::uint64_t kTypeStopSending = 0x05;
constexpr std::uint64_t kTypeCrypto = 0x06;
constexpr std::uint64_t kTypeStreamBase = 0x08;  // |0x04 OFF |0x02 LEN |0x01 FIN
constexpr std::uint64_t kTypeMaxData = 0x10;
constexpr std::uint64_t kTypeMaxStreamData = 0x11;
constexpr std::uint64_t kTypeNewConnectionId = 0x18;
constexpr std::uint64_t kTypePathChallenge = 0x1a;
constexpr std::uint64_t kTypePathResponse = 0x1b;
constexpr std::uint64_t kTypeConnectionClose = 0x1c;
constexpr std::uint64_t kTypeHandshakeDone = 0x1e;

template <typename W>
void encode_ack_info(const AckInfo& info, W& w) {
  // RFC 9000 ACK layout: largest, delay, range count - 1, first range,
  // then (gap, range) pairs walking downward.
  w.varint(info.largest_acked());
  w.varint(info.ack_delay_us);
  const std::size_t n = info.ranges.size();
  w.varint(n == 0 ? 0 : n - 1);
  if (n == 0) {
    w.varint(0);
    return;
  }
  const AckRange& first = info.ranges.front();
  w.varint(first.last - first.first);
  for (std::size_t i = 1; i < n; ++i) {
    const AckRange& prev = info.ranges[i - 1];
    const AckRange& cur = info.ranges[i];
    // gap = number of unacked packets between ranges minus 1.
    w.varint(prev.first - cur.last - 2);
    w.varint(cur.last - cur.first);
  }
}

std::optional<AckInfo> parse_ack_info(Reader& r) {
  AckInfo info;
  const auto largest = r.varint();
  const auto delay = r.varint();
  const auto count = r.varint();
  const auto first_len = r.varint();
  if (!largest || !delay || !count || !first_len) return std::nullopt;
  if (*first_len > *largest) return std::nullopt;
  info.ack_delay_us = *delay;
  // Exact-size preallocation, capped so a hostile range count cannot force
  // a huge reservation before the per-range bounds checks below reject it.
  info.ranges.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
      *count + 1, 64)));
  AckRange first{*largest - *first_len, *largest};
  info.ranges.push_back(first);
  PacketNumber smallest = first.first;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto gap = r.varint();
    const auto len = r.varint();
    if (!gap || !len) return std::nullopt;
    if (smallest < *gap + 2) return std::nullopt;
    const PacketNumber last = smallest - *gap - 2;
    if (last < *len) return std::nullopt;
    AckRange range{last - *len, last};
    info.ranges.push_back(range);
    smallest = range.first;
  }
  return info;
}

std::optional<QoeSignal> parse_qoe(Reader& r) {
  QoeSignal q;
  const auto cb = r.varint();
  const auto cf = r.varint();
  const auto bps = r.varint();
  const auto fps = r.varint();
  if (!cb || !cf || !bps || !fps) return std::nullopt;
  q.cached_bytes = *cb;
  q.cached_frames = *cf;
  q.bps = *bps;
  q.fps = *fps;
  return q;
}

template <typename W>
void encode_qoe(const QoeSignal& q, W& w) {
  w.varint(q.cached_bytes);
  w.varint(q.cached_frames);
  w.varint(q.bps);
  w.varint(q.fps);
}

template <typename W>
struct FrameEncoder {
  W& w;

  void operator()(const PaddingFrame& f) const {
    for (std::uint64_t i = 0; i < f.length; ++i) w.u8(0);
  }
  void operator()(const PingFrame&) const { w.varint(kTypePing); }
  void operator()(const AckFrame& f) const {
    w.varint(kTypeAck);
    encode_ack_info(f.info, w);
  }
  void operator()(const AckMpFrame& f) const {
    w.varint(kFrameAckMp);
    w.varint(f.path_id);
    encode_ack_info(f.info, w);
    w.u8(f.qoe.has_value() ? 1 : 0);
    if (f.qoe) encode_qoe(*f.qoe, w);
  }
  void operator()(const PathStatusFrame& f) const {
    w.varint(kFramePathStatus);
    w.varint(f.path_id);
    w.varint(f.status_seq);
    w.varint(f.status);
  }
  void operator()(const QoeControlSignalsFrame& f) const {
    w.varint(kFrameQoeControlSignals);
    encode_qoe(f.qoe, w);
  }
  void operator()(const RepairFrame& f) const {
    w.varint(kFrameRepair);
    w.varint(f.path_id);
    w.varint(f.window_id);
    w.varint(f.first_pn);
    w.varint(f.k);
    w.varint(f.repair_count);
    w.varint(f.symbol_index);
    w.varint(f.payload.size());
    w.bytes(f.payload);
  }
  void operator()(const CryptoFrame& f) const {
    w.varint(kTypeCrypto);
    w.varint(f.offset);
    w.varint(f.data.size());
    w.bytes(f.data);
  }
  void operator()(const StreamFrame& f) const {
    // Always emit OFF|LEN so frames are self-delimiting.
    std::uint64_t type = kTypeStreamBase | 0x04 | 0x02;
    if (f.fin) type |= 0x01;
    w.varint(type);
    w.varint(f.stream_id);
    w.varint(f.offset);
    w.varint(f.data.size());
    w.bytes(f.data);
  }
  void operator()(const MaxDataFrame& f) const {
    w.varint(kTypeMaxData);
    w.varint(f.maximum);
  }
  void operator()(const MaxStreamDataFrame& f) const {
    w.varint(kTypeMaxStreamData);
    w.varint(f.stream_id);
    w.varint(f.maximum);
  }
  void operator()(const ResetStreamFrame& f) const {
    w.varint(kTypeResetStream);
    w.varint(f.stream_id);
    w.varint(f.error_code);
    w.varint(f.final_size);
  }
  void operator()(const StopSendingFrame& f) const {
    w.varint(kTypeStopSending);
    w.varint(f.stream_id);
    w.varint(f.error_code);
  }
  void operator()(const NewConnectionIdFrame& f) const {
    w.varint(kTypeNewConnectionId);
    w.varint(f.sequence);
    w.varint(f.retire_prior_to);
    w.u8(static_cast<std::uint8_t>(f.cid.size()));
    w.bytes(f.cid);
    w.bytes(f.reset_token);
  }
  void operator()(const PathChallengeFrame& f) const {
    w.varint(kTypePathChallenge);
    w.bytes(f.data);
  }
  void operator()(const PathResponseFrame& f) const {
    w.varint(kTypePathResponse);
    w.bytes(f.data);
  }
  void operator()(const HandshakeDoneFrame&) const {
    w.varint(kTypeHandshakeDone);
  }
  void operator()(const ConnectionCloseFrame& f) const {
    w.varint(kTypeConnectionClose);
    w.varint(f.error_code);
    w.varint(0);  // frame type that triggered the error (unused)
    w.varint(f.reason.size());
    w.bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(f.reason.data()),
        f.reason.size()));
  }
};

FrameData payload_of(std::span<const std::uint8_t> view, PayloadOwnership own) {
  return own == PayloadOwnership::kBorrow
             ? FrameData::borrowed(view)
             : FrameData(std::vector<std::uint8_t>(view.begin(), view.end()));
}

}  // namespace

bool AckInfo::contains(PacketNumber pn) const {
  for (const AckRange& r : ranges)
    if (pn >= r.first && pn <= r.last) return true;
  return false;
}

void encode_frame(const Frame& frame, Writer& w) {
  std::visit(FrameEncoder<Writer>{w}, frame);
}

void encode_frame(const Frame& frame, BufWriter& w) {
  std::visit(FrameEncoder<BufWriter>{w}, frame);
}

void encode_frame(const Frame& frame, SizeWriter& w) {
  std::visit(FrameEncoder<SizeWriter>{w}, frame);
}

std::optional<Frame> parse_frame(Reader& r, PayloadOwnership own) {
  const auto type = r.varint();
  if (!type) return std::nullopt;
  switch (*type) {
    case kTypePadding: {
      // Coalesce the run of zero bytes into one frame.
      PaddingFrame f{1};
      // Padding is type 0x00; subsequent zero bytes are more padding.
      while (r.remaining() > 0) {
        Reader peek = r;
        const auto next = peek.u8();
        if (!next || *next != 0) break;
        r.u8();
        ++f.length;
      }
      return Frame{f};
    }
    case kTypePing:
      return Frame{PingFrame{}};
    case kTypeAck: {
      auto info = parse_ack_info(r);
      if (!info) return std::nullopt;
      return Frame{AckFrame{std::move(*info)}};
    }
    case kFrameAckMp: {
      AckMpFrame f;
      const auto path = r.varint();
      if (!path) return std::nullopt;
      f.path_id = static_cast<PathId>(*path);
      auto info = parse_ack_info(r);
      if (!info) return std::nullopt;
      f.info = std::move(*info);
      const auto has_qoe = r.u8();
      if (!has_qoe) return std::nullopt;
      if (*has_qoe) {
        auto q = parse_qoe(r);
        if (!q) return std::nullopt;
        f.qoe = *q;
      }
      return Frame{std::move(f)};
    }
    case kFramePathStatus: {
      PathStatusFrame f;
      const auto path = r.varint();
      const auto seq = r.varint();
      const auto status = r.varint();
      if (!path || !seq || !status) return std::nullopt;
      if (*status > PathStatusKind::kAvailable) return std::nullopt;
      f.path_id = static_cast<PathId>(*path);
      f.status_seq = *seq;
      f.status = *status;
      return Frame{f};
    }
    case kFrameQoeControlSignals: {
      auto q = parse_qoe(r);
      if (!q) return std::nullopt;
      return Frame{QoeControlSignalsFrame{*q}};
    }
    case kFrameRepair: {
      RepairFrame f;
      const auto path = r.varint();
      const auto window = r.varint();
      const auto first_pn = r.varint();
      const auto k = r.varint();
      const auto rep = r.varint();
      const auto idx = r.varint();
      const auto len = r.varint();
      if (!path || !window || !first_pn || !k || !rep || !idx || !len)
        return std::nullopt;
      // Sanity bounds: GF(2^8) caps k + r at 256; the window's last pn must
      // not overflow the varint space; the symbol row must exist.
      if (*k == 0 || *rep == 0 || *k + *rep > 256) return std::nullopt;
      if (*idx >= *rep) return std::nullopt;
      if (*first_pn > kVarintMax - *k) return std::nullopt;
      auto data = r.view(*len);
      if (!data) return std::nullopt;
      f.path_id = static_cast<PathId>(*path);
      f.window_id = *window;
      f.first_pn = *first_pn;
      f.k = *k;
      f.repair_count = *rep;
      f.symbol_index = *idx;
      f.payload = payload_of(*data, own);
      return Frame{std::move(f)};
    }
    case kTypeCrypto: {
      CryptoFrame f;
      const auto off = r.varint();
      const auto len = r.varint();
      if (!off || !len) return std::nullopt;
      // Final offset past the varint ceiling is a FRAME_ENCODING_ERROR
      // (RFC 9000 §19.6); rejecting here keeps downstream reassembly
      // arithmetic overflow-free.
      if (*off > kVarintMax - *len) return std::nullopt;
      auto data = r.view(*len);
      if (!data) return std::nullopt;
      f.offset = *off;
      f.data = payload_of(*data, own);
      return Frame{std::move(f)};
    }
    case kTypeMaxData: {
      const auto m = r.varint();
      if (!m) return std::nullopt;
      return Frame{MaxDataFrame{*m}};
    }
    case kTypeMaxStreamData: {
      const auto id = r.varint();
      const auto m = r.varint();
      if (!id || !m) return std::nullopt;
      return Frame{MaxStreamDataFrame{*id, *m}};
    }
    case kTypeResetStream: {
      const auto id = r.varint();
      const auto ec = r.varint();
      const auto fs = r.varint();
      if (!id || !ec || !fs) return std::nullopt;
      return Frame{ResetStreamFrame{*id, *ec, *fs}};
    }
    case kTypeStopSending: {
      const auto id = r.varint();
      const auto ec = r.varint();
      if (!id || !ec) return std::nullopt;
      return Frame{StopSendingFrame{*id, *ec}};
    }
    case kTypeNewConnectionId: {
      NewConnectionIdFrame f;
      const auto seq = r.varint();
      const auto retire = r.varint();
      const auto len = r.u8();
      if (!seq || !retire || !len || *len != f.cid.size()) return std::nullopt;
      if (!r.bytes_into(f.cid)) return std::nullopt;
      if (!r.bytes_into(f.reset_token)) return std::nullopt;
      f.sequence = *seq;
      f.retire_prior_to = *retire;
      return Frame{f};
    }
    case kTypePathChallenge: {
      PathChallengeFrame f;
      if (!r.bytes_into(f.data)) return std::nullopt;
      return Frame{f};
    }
    case kTypePathResponse: {
      PathResponseFrame f;
      if (!r.bytes_into(f.data)) return std::nullopt;
      return Frame{f};
    }
    case kTypeConnectionClose: {
      ConnectionCloseFrame f;
      const auto ec = r.varint();
      const auto trigger = r.varint();
      const auto len = r.varint();
      if (!ec || !trigger || !len) return std::nullopt;
      auto reason = r.bytes(*len);
      if (!reason) return std::nullopt;
      f.error_code = *ec;
      f.reason.assign(reason->begin(), reason->end());
      return Frame{std::move(f)};
    }
    case kTypeHandshakeDone:
      return Frame{HandshakeDoneFrame{}};
    default:
      if ((*type & ~0x07ULL) == kTypeStreamBase) {
        StreamFrame f;
        f.fin = (*type & 0x01) != 0;
        const bool has_off = (*type & 0x04) != 0;
        const bool has_len = (*type & 0x02) != 0;
        const auto id = r.varint();
        if (!id) return std::nullopt;
        f.stream_id = *id;
        if (has_off) {
          const auto off = r.varint();
          if (!off) return std::nullopt;
          f.offset = *off;
        }
        std::uint64_t len = r.remaining();
        if (has_len) {
          const auto l = r.varint();
          if (!l) return std::nullopt;
          len = *l;
        }
        // RFC 9000 §19.8: final size must stay below 2^62.
        if (f.offset > kVarintMax - len) return std::nullopt;
        auto data = r.view(len);
        if (!data) return std::nullopt;
        f.data = payload_of(*data, own);
        return Frame{std::move(f)};
      }
      return std::nullopt;  // unknown frame type
  }
}

std::optional<std::vector<Frame>> parse_frames(
    std::span<const std::uint8_t> payload) {
  std::vector<Frame> frames;
  if (!parse_frames_into(payload, frames, PayloadOwnership::kCopy))
    return std::nullopt;
  return frames;
}

bool parse_frames_into(std::span<const std::uint8_t> payload,
                       std::vector<Frame>& out, PayloadOwnership own) {
  Reader r(payload);
  while (!r.done()) {
    auto f = parse_frame(r, own);
    if (!f) return false;
    out.push_back(std::move(*f));
  }
  return true;
}

std::size_t frame_wire_size(const Frame& frame) {
  SizeWriter w;
  encode_frame(frame, w);
  return w.size();
}

bool is_ack_eliciting(const Frame& frame) {
  return !std::holds_alternative<AckFrame>(frame) &&
         !std::holds_alternative<AckMpFrame>(frame) &&
         !std::holds_alternative<PaddingFrame>(frame) &&
         !std::holds_alternative<ConnectionCloseFrame>(frame);
}

std::size_t stream_frame_overhead(StreamId id, std::uint64_t offset,
                                  std::size_t length) {
  // type(1) + id + offset + length varints.
  return 1 + varint_size(id) + varint_size(offset) + varint_size(length);
}

std::vector<std::uint8_t> encode_transport_params(const TransportParams& p) {
  Writer w;
  w.reserve(1 + varint_size(p.initial_max_data) +
            varint_size(p.initial_max_stream_data) +
            varint_size(p.active_connection_id_limit) +
            varint_size(p.max_ack_delay_ms));
  w.u8(p.enable_multipath ? 1 : 0);
  w.varint(p.initial_max_data);
  w.varint(p.initial_max_stream_data);
  w.varint(p.active_connection_id_limit);
  w.varint(p.max_ack_delay_ms);
  return w.take();
}

std::optional<TransportParams> parse_transport_params(
    std::span<const std::uint8_t> data) {
  Reader r(data);
  TransportParams p;
  const auto mp = r.u8();
  const auto max_data = r.varint();
  const auto max_stream = r.varint();
  const auto cid_limit = r.varint();
  const auto ack_delay = r.varint();
  if (!mp || !max_data || !max_stream || !cid_limit || !ack_delay)
    return std::nullopt;
  p.enable_multipath = *mp != 0;
  p.initial_max_data = *max_data;
  p.initial_max_stream_data = *max_stream;
  p.active_connection_id_limit = *cid_limit;
  p.max_ack_delay_ms = *ack_delay;
  return p;
}

}  // namespace xlink::quic
