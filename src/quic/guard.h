// Hostile-peer hardening: protocol enforcement and the invariant auditor.
//
// Two defenses live here, both per connection:
//
//  - ResourceBudgets + violation accounting (GuardCounters): the connection
//    consults the budgets at every peer-driven allocation point (streams,
//    reassembly gaps, repair windows, duplicate packet numbers, ack and
//    repair frame rates) and escalates an overrun to a graceful
//    CONNECTION_CLOSE carrying the matching RFC 9000 transport error code.
//    Defaults are sized so honest traffic -- including lossy chaos runs and
//    FEC/re-injection duplication -- never comes near a limit; only
//    adversarial shapes (floods, bombs, sprays) trip them.
//
//  - InvariantAuditor: a cross-layer consistency walker gated like
//    telemetry (cmake -DXLINK_AUDIT=OFF compiles every hook to ((void)0);
//    the XLINK_AUDIT environment variable toggles it at runtime). Each tick
//    it re-derives state the hot path maintains incrementally --
//    bytes_in_flight vs. the sent-packet ledger, pool acquire/release
//    balance, flow-control monotonicity, FEC stash byte accounting -- and
//    on the first mismatch renders a structured qlog dump and aborts (tests
//    install a capturing handler instead).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "quic/types.h"
#include "sim/time.h"

namespace xlink::quic {

class Connection;

/// RFC 9000 §20 transport error codes (the subset the guard raises).
enum class TransportError : std::uint64_t {
  kNoError = 0x0,
  kInternalError = 0x1,
  kFlowControlError = 0x3,
  kStreamLimitError = 0x4,
  kStreamStateError = 0x5,
  kFinalSizeError = 0x6,
  kFrameEncodingError = 0x7,
  kConnectionIdLimitError = 0x9,
  kProtocolViolation = 0xa,
  kCryptoBufferExceeded = 0xd,
};

const char* transport_error_name(std::uint64_t code);

/// What the guard actually saw; finer-grained than the wire error code
/// (several kinds map onto PROTOCOL_VIOLATION). Exported in the
/// guard:violation trace event.
enum class ViolationKind : std::uint8_t {
  kConnectionFlowControl = 0,  // data_received_ beyond local_max_data_
  kStreamFlowControl,          // stream offset beyond the per-stream grant
  kStreamLimit,                // too many open receive streams
  kStreamIdInvalid,            // id shape this endpoint never issues
  kFinalSizeChanged,           // FIN moved, or data past the final size
  kLyingAck,                   // ack range beyond anything we ever sent
  kAckFlood,                   // ack frames far beyond our send rate
  kReplayFlood,                // duplicate packet numbers beyond budget
  kFrameIllegalInState,        // e.g. STREAM before the handshake completes
  kCidLimit,                   // NEW_CONNECTION_ID past the advertised limit
  kRepairOversized,            // REPAIR symbol larger than any legal packet
  kRepairFlood,                // repair frames far beyond our receive rate
};

const char* violation_kind_name(ViolationKind kind);

/// Per-connection resource budgets. Every limit bounds state a remote peer
/// can force this endpoint to hold; the defaults leave an order of
/// magnitude of headroom over anything honest traffic produces.
struct ResourceBudgets {
  /// Master switch: off records nothing and closes nothing (the pre-guard
  /// permissive transport, kept for ablations).
  bool enforce = true;

  /// Open receive streams a peer may create.
  std::uint64_t max_open_recv_streams = 1024;

  /// Reassembly gaps tracked per receive stream before the IntervalSet
  /// collapses its smallest gap (soft defense: memory stays bounded, the
  /// phantom bytes are overwritten if the real data ever arrives).
  std::size_t max_recv_gaps_per_stream = 256;

  /// Duplicate (replayed) packet numbers tolerated before closing.
  std::uint64_t max_replayed_packets = 1024;

  /// Ack-frame rate limit: base allowance plus a per-sent-packet budget
  /// (honest peers generate well under one ack frame per packet we send).
  std::uint64_t ack_flood_base = 512;
  std::uint64_t ack_flood_per_packet_sent = 4;

  /// REPAIR-frame rate limit, same shape against our receive count.
  std::uint64_t repair_flood_base = 512;
  std::uint64_t repair_flood_per_packet_received = 2;

  /// Largest acceptable REPAIR symbol; anything a real window produces is
  /// bounded by the sealed MTU plus the 2-byte length prefix.
  std::size_t max_repair_symbol_bytes = 2048;

  /// Anti-amplification: on unvalidated server paths, wire bytes sent may
  /// not exceed this multiple of wire bytes received (RFC 9000 §8.1).
  std::uint64_t amplification_factor = 3;
};

/// Violation and budget-pressure accounting, exposed via
/// Connection::guard_counters() and summarized in the analyzer's security
/// report.
struct GuardCounters {
  std::uint64_t violations = 0;            // escalated to CONNECTION_CLOSE
  std::uint64_t replayed_packets = 0;      // duplicate PNs observed
  std::uint64_t ack_frames = 0;            // ack/ack_mp frames received
  std::uint64_t repair_frames = 0;         // REPAIR frames received
  std::uint64_t amplification_blocked = 0; // sends suppressed by the 3x cap
  std::uint64_t gap_collapses = 0;         // IntervalSet cap applications
  std::uint64_t phantom_bytes = 0;         // bytes synthesized by collapses
  std::uint64_t close_resends = 0;         // CONNECTION_CLOSE re-emissions
  // High-water marks (budget pressure even when nothing trips).
  std::uint64_t peak_open_recv_streams = 0;
  std::uint64_t peak_stream_gaps = 0;
};

/// Terminal state of a connection, for tests and the harness.
struct CloseInfo {
  bool closed = false;
  bool peer_initiated = false;   // close arrived rather than being sent
  std::uint64_t error_code = 0;  // transport error code on the wire
  std::string reason;
};

/// One failed audit check.
struct AuditFailure {
  const char* check = "";  // e.g. "bytes_in_flight_ledger"
  std::string detail;
  std::uint64_t expected = 0;
  std::uint64_t actual = 0;
};

/// Re-derives cross-layer invariants from first principles and compares
/// with the incrementally maintained state. One instance per connection
/// (it keeps monotonicity snapshots between ticks).
class InvariantAuditor {
 public:
  struct Config {
    /// Runtime gate; defaults to audit_enabled_by_env().
    bool enabled = true;
    /// Outstanding pooled-buffer debt (acquires - releases) tolerated on
    /// this thread before the auditor calls it a leak.
    std::uint64_t max_pool_debt_slots = 1u << 16;
    /// Invoked on the first failed check; default renders a qlog dump of
    /// the connection's trace ring to stderr and aborts.
    std::function<void(const Connection&, const AuditFailure&)> on_failure;
  };

  InvariantAuditor() = default;
  explicit InvariantAuditor(Config cfg) : cfg_(std::move(cfg)) {}

  bool enabled() const { return cfg_.enabled; }
  void set_enabled(bool on) { cfg_.enabled = on; }
  void set_on_failure(
      std::function<void(const Connection&, const AuditFailure&)> fn) {
    cfg_.on_failure = std::move(fn);
  }

  /// Walks every invariant; returns the number of checks run. Traces an
  /// audit:check event through the connection's sink.
  std::size_t tick(const Connection& conn);

  /// Scheduler-contract check, called at the select_path() decision point:
  /// a scheduler must never hand back a path that is not schedulable
  /// (abandoned, standby, or declared dead / kProbing).
  void check_scheduled_path(const Connection& conn, PathId path);

  std::uint64_t ticks() const { return ticks_; }
  std::uint64_t checks() const { return checks_; }
  std::uint64_t failures() const { return failures_; }

 private:
  void fail(const Connection& conn, AuditFailure f);

  Config cfg_;
  std::uint64_t ticks_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t failures_ = 0;
  // Flow-control monotonicity snapshots (these may only grow).
  std::uint64_t last_local_max_data_ = 0;
  std::uint64_t last_peer_max_data_ = 0;
  std::uint64_t last_data_received_ = 0;
  std::uint64_t last_data_consumed_ = 0;
  // Pool-balance baseline: the lowest signed outstanding count (acquires -
  // releases) observed, re-captured whenever the process-global counters
  // are reset under us (see tick() for why raw counters cannot be used).
  bool pool_baselined_ = false;
  std::int64_t pool_floor_ = 0;
  std::uint64_t pool_last_acquires_ = 0;
  std::uint64_t pool_last_releases_ = 0;
};

/// Runtime default for InvariantAuditor::Config::enabled: true unless the
/// XLINK_AUDIT environment variable is set to "0", "off" or "false".
bool audit_enabled_by_env();

}  // namespace xlink::quic

// Audit hooks, gated exactly like XLINK_TRACE: a cmake -DXLINK_AUDIT=OFF
// build defines XLINK_AUDIT_DISABLED and every hook compiles to ((void)0).
#if defined(XLINK_AUDIT_DISABLED)
#define XLINK_AUDIT_TICK(auditor, conn) ((void)0)
#define XLINK_AUDIT_SCHED(auditor, conn, path) ((void)0)
#else
#define XLINK_AUDIT_TICK(auditor, conn) \
  do {                                  \
    if ((auditor).enabled()) (auditor).tick(conn); \
  } while (0)
#define XLINK_AUDIT_SCHED(auditor, conn, path) \
  do {                                         \
    if ((auditor).enabled()) (auditor).check_scheduled_path(conn, path); \
  } while (0)
#endif
