// QUIC packet header encoding and full packet seal/open.
//
// Two header forms, mirroring RFC 9000's long/short split with the fields
// this simulator needs:
//   long (handshake):  [0xC0][dcid(8)][scid(8)][pn varint]
//   short (1-RTT):     [0x40][dcid(8)][pn varint]
// Header bytes are the AEAD's associated data. Header protection is not
// modeled (it hides packet numbers from observers, not from endpoints, and
// has no transport-behaviour effect). The packet number is carried in full
// rather than truncated -- a documented simplification that costs a few
// bytes per packet and removes PN-decoding ambiguity.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet_buffer.h"
#include "quic/crypto.h"
#include "quic/frame.h"
#include "quic/types.h"

namespace xlink::quic {

enum class PacketType : std::uint8_t {
  kInitial,  // long header: carries the handshake CRYPTO exchange
  kOneRtt,   // short header: everything after the handshake
};

struct PacketHeader {
  PacketType type = PacketType::kOneRtt;
  std::array<std::uint8_t, 8> dcid{};
  std::array<std::uint8_t, 8> scid{};  // long header only
  /// CID sequence number of the DCID: identifies the path / PN space.
  std::uint32_t cid_sequence = 0;
  PacketNumber packet_number = 0;
};

/// A parsed-but-not-yet-decrypted packet (owning copies; legacy/offline
/// path -- the hot path uses PacketView below).
struct ReceivedPacket {
  PacketHeader header;
  std::vector<std::uint8_t> header_bytes;  // AAD
  std::vector<std::uint8_t> ciphertext;    // payload || tag
};

/// A parsed packet whose bytes still live in the receive buffer: the AAD
/// and ciphertext are borrowed spans, and open_packet_in_place decrypts
/// the ciphertext span directly. Valid only while the datagram is alive.
struct PacketView {
  PacketHeader header;
  std::span<const std::uint8_t> header_bytes;  // AAD
  std::span<std::uint8_t> ciphertext;          // payload || tag
};

/// Seals header + frames into one pooled buffer: header and payload are
/// encoded straight into the slot, then the AEAD encrypts the payload in
/// place and appends the tag. Zero heap allocations once the pool is warm.
/// The header carries cid_sequence explicitly (in a real deployment the
/// receiver derives it by looking up the DCID it issued; carrying it keeps
/// the simulator honest without a global CID table).
net::PacketBuffer seal_packet_buffer(const PacketProtection& aead,
                                     const PacketHeader& header,
                                     std::span<const Frame> frames);

/// Copying convenience over seal_packet_buffer (tests, offline tools).
std::vector<std::uint8_t> seal_packet(const PacketProtection& aead,
                                      const PacketHeader& header,
                                      const std::vector<Frame>& frames);

/// Splits wire bytes into borrowed header/ciphertext views; nullopt on
/// malformed input. The mutable span lets open_packet_in_place decrypt the
/// buffer it points into.
std::optional<PacketView> parse_packet_view(std::span<std::uint8_t> datagram);

/// Decrypts a parsed packet in its receive buffer; returns the plaintext
/// payload span (a prefix of pkt.ciphertext) or nullopt on auth failure.
std::optional<std::span<const std::uint8_t>> open_packet_in_place(
    const PacketProtection& aead, const PacketView& pkt);

/// Splits wire bytes into header + ciphertext; nullopt on malformed input.
std::optional<ReceivedPacket> parse_packet(
    std::span<const std::uint8_t> datagram);

/// Decrypts and parses the frames of a received packet.
std::optional<std::vector<Frame>> open_packet(const PacketProtection& aead,
                                              const ReceivedPacket& pkt);

/// Wire overhead of a packet header (for payload budgeting).
std::size_t header_size(PacketType type, PacketNumber pn);

}  // namespace xlink::quic
