#include "quic/crypto.h"

namespace xlink::quic {
namespace {

/// Small non-cryptographic PRF (splitmix64 finalizer); NOT secure, but
/// deterministic, fast, and collision-resistant enough to make tampered or
/// mis-addressed packets fail authentication in tests.
std::uint64_t prf(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t nonce_to_u64(const Nonce& n, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && offset + i < n.size(); ++i)
    v = (v << 8) | n[offset + i];
  return v;
}

}  // namespace

Nonce build_multipath_nonce(std::uint32_t cid_sequence, PacketNumber pn) {
  // 96-bit path-and-packet-number: 32-bit CID sequence number in network
  // byte order, then two zero bits and the 62-bit packet number.
  Nonce n{};
  n[0] = static_cast<std::uint8_t>(cid_sequence >> 24);
  n[1] = static_cast<std::uint8_t>(cid_sequence >> 16);
  n[2] = static_cast<std::uint8_t>(cid_sequence >> 8);
  n[3] = static_cast<std::uint8_t>(cid_sequence);
  const std::uint64_t pn62 = pn & ((1ULL << 62) - 1);
  for (int i = 0; i < 8; ++i)
    n[4 + i] = static_cast<std::uint8_t>(pn62 >> (56 - 8 * i));
  return n;
}

Nonce PacketProtection::iv() const {
  Nonce n{};
  std::uint64_t a = prf(key_ ^ 0x1111111111111111ULL);
  std::uint64_t b = prf(key_ ^ 0x2222222222222222ULL);
  for (int i = 0; i < 8; ++i) n[i] = static_cast<std::uint8_t>(a >> (56 - 8 * i));
  for (int i = 0; i < 4; ++i)
    n[8 + i] = static_cast<std::uint8_t>(b >> (24 - 8 * i));
  return n;
}

std::uint64_t PacketProtection::keystream_block(const Nonce& nonce,
                                                std::uint64_t counter) const {
  return prf(key_ ^ prf(nonce_to_u64(nonce, 0) ^
                        prf(nonce_to_u64(nonce, 4) ^ counter)));
}

std::uint64_t PacketProtection::mac(const Nonce& nonce,
                                    std::span<const std::uint8_t> aad,
                                    std::span<const std::uint8_t> ct) const {
  // FNV-1a over aad || ct, folded with key and nonce through the PRF.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::span<const std::uint8_t> data) {
    for (std::uint8_t b : data) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
  };
  mix(aad);
  mix(ct);
  // Fold in the WHOLE nonce (bytes 0-7 and 4-11) so every path-id and
  // packet-number bit is authenticated.
  return prf(h ^ key_ ^ prf(nonce_to_u64(nonce, 0) ^
                            prf(nonce_to_u64(nonce, 4))));
}

std::vector<std::uint8_t> PacketProtection::seal(
    std::uint32_t cid_sequence, PacketNumber pn,
    std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> plaintext) const {
  Nonce nonce = build_multipath_nonce(cid_sequence, pn);
  const Nonce iv_bytes = iv();
  for (std::size_t i = 0; i < nonce.size(); ++i) nonce[i] ^= iv_bytes[i];

  std::vector<std::uint8_t> out(plaintext.begin(), plaintext.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t block = keystream_block(nonce, i / 8);
    out[i] ^= static_cast<std::uint8_t>(block >> (8 * (i % 8)));
  }
  const std::uint64_t tag = mac(nonce, aad, out);
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(tag >> (56 - 8 * i)));
  return out;
}

std::optional<std::vector<std::uint8_t>> PacketProtection::open(
    std::uint32_t cid_sequence, PacketNumber pn,
    std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> ciphertext_and_tag) const {
  if (ciphertext_and_tag.size() < kAeadTagSize) return std::nullopt;
  Nonce nonce = build_multipath_nonce(cid_sequence, pn);
  const Nonce iv_bytes = iv();
  for (std::size_t i = 0; i < nonce.size(); ++i) nonce[i] ^= iv_bytes[i];

  const std::size_t ct_len = ciphertext_and_tag.size() - kAeadTagSize;
  const auto ct = ciphertext_and_tag.first(ct_len);
  std::uint64_t tag = 0;
  for (std::size_t i = 0; i < kAeadTagSize; ++i)
    tag = (tag << 8) | ciphertext_and_tag[ct_len + i];
  if (tag != mac(nonce, aad, ct)) return std::nullopt;

  std::vector<std::uint8_t> out(ct.begin(), ct.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t block = keystream_block(nonce, i / 8);
    out[i] ^= static_cast<std::uint8_t>(block >> (8 * (i % 8)));
  }
  return out;
}

}  // namespace xlink::quic
