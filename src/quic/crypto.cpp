#include "quic/crypto.h"

#include <algorithm>

namespace xlink::quic {
namespace {

/// Small non-cryptographic PRF (splitmix64 finalizer); NOT secure, but
/// deterministic, fast, and collision-resistant enough to make tampered or
/// mis-addressed packets fail authentication in tests.
std::uint64_t prf(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t nonce_to_u64(const Nonce& n, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && offset + i < n.size(); ++i)
    v = (v << 8) | n[offset + i];
  return v;
}

}  // namespace

Nonce build_multipath_nonce(std::uint32_t cid_sequence, PacketNumber pn) {
  // 96-bit path-and-packet-number: 32-bit CID sequence number in network
  // byte order, then two zero bits and the 62-bit packet number.
  Nonce n{};
  n[0] = static_cast<std::uint8_t>(cid_sequence >> 24);
  n[1] = static_cast<std::uint8_t>(cid_sequence >> 16);
  n[2] = static_cast<std::uint8_t>(cid_sequence >> 8);
  n[3] = static_cast<std::uint8_t>(cid_sequence);
  const std::uint64_t pn62 = pn & ((1ULL << 62) - 1);
  for (int i = 0; i < 8; ++i)
    n[4 + i] = static_cast<std::uint8_t>(pn62 >> (56 - 8 * i));
  return n;
}

PacketProtection::PacketProtection(std::uint64_t key) : key_(key), iv_{} {
  std::uint64_t a = prf(key_ ^ 0x1111111111111111ULL);
  std::uint64_t b = prf(key_ ^ 0x2222222222222222ULL);
  for (int i = 0; i < 8; ++i)
    iv_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(a >> (56 - 8 * i));
  for (int i = 0; i < 4; ++i)
    iv_[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(b >> (24 - 8 * i));
}

Nonce PacketProtection::effective_nonce(std::uint32_t cid_sequence,
                                        PacketNumber pn) const {
  Nonce nonce = build_multipath_nonce(cid_sequence, pn);
  for (std::size_t i = 0; i < nonce.size(); ++i) nonce[i] ^= iv_[i];
  return nonce;
}

void PacketProtection::apply_keystream(const Nonce& nonce, std::uint8_t* data,
                                       std::size_t len) const {
  // One keystream block covers 8 bytes; byte i is XORed with byte (i % 8)
  // of block (i / 8), exactly the historical layout.
  const std::uint64_t n0 = nonce_to_u64(nonce, 0);
  const std::uint64_t n4 = nonce_to_u64(nonce, 4);
  for (std::size_t i = 0; i < len; i += 8) {
    const std::uint64_t block = prf(key_ ^ prf(n0 ^ prf(n4 ^ (i / 8))));
    const std::size_t n = len - i < 8 ? len - i : 8;
    for (std::size_t j = 0; j < n; ++j)
      data[i + j] ^= static_cast<std::uint8_t>(block >> (8 * j));
  }
}

std::uint64_t PacketProtection::mac(const Nonce& nonce,
                                    std::span<const std::uint8_t> aad,
                                    std::span<const std::uint8_t> ct) const {
  // FNV-1a over aad || ct, folded with key and nonce through the PRF.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::span<const std::uint8_t> data) {
    for (std::uint8_t b : data) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
  };
  mix(aad);
  mix(ct);
  // Fold in the WHOLE nonce (bytes 0-7 and 4-11) so every path-id and
  // packet-number bit is authenticated.
  return prf(h ^ key_ ^ prf(nonce_to_u64(nonce, 0) ^
                            prf(nonce_to_u64(nonce, 4))));
}

void PacketProtection::seal_in_place(std::uint32_t cid_sequence,
                                     PacketNumber pn,
                                     std::span<const std::uint8_t> aad,
                                     std::uint8_t* payload,
                                     std::size_t payload_len) const {
  const Nonce nonce = effective_nonce(cid_sequence, pn);
  apply_keystream(nonce, payload, payload_len);
  const std::uint64_t tag = mac(nonce, aad, {payload, payload_len});
  for (std::size_t i = 0; i < kAeadTagSize; ++i)
    payload[payload_len + i] = static_cast<std::uint8_t>(tag >> (56 - 8 * i));
}

std::optional<std::size_t> PacketProtection::open_in_place(
    std::uint32_t cid_sequence, PacketNumber pn,
    std::span<const std::uint8_t> aad,
    std::span<std::uint8_t> ciphertext_and_tag) const {
  if (ciphertext_and_tag.size() < kAeadTagSize) return std::nullopt;
  const Nonce nonce = effective_nonce(cid_sequence, pn);

  const std::size_t ct_len = ciphertext_and_tag.size() - kAeadTagSize;
  std::uint64_t tag = 0;
  for (std::size_t i = 0; i < kAeadTagSize; ++i)
    tag = (tag << 8) | ciphertext_and_tag[ct_len + i];
  if (tag != mac(nonce, aad, ciphertext_and_tag.first(ct_len)))
    return std::nullopt;

  apply_keystream(nonce, ciphertext_and_tag.data(), ct_len);
  return ct_len;
}

std::vector<std::uint8_t> PacketProtection::seal(
    std::uint32_t cid_sequence, PacketNumber pn,
    std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> plaintext) const {
  std::vector<std::uint8_t> out(plaintext.size() + kAeadTagSize);
  std::copy(plaintext.begin(), plaintext.end(), out.begin());
  seal_in_place(cid_sequence, pn, aad, out.data(), plaintext.size());
  return out;
}

std::optional<std::vector<std::uint8_t>> PacketProtection::open(
    std::uint32_t cid_sequence, PacketNumber pn,
    std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> ciphertext_and_tag) const {
  std::vector<std::uint8_t> buf(ciphertext_and_tag.begin(),
                                ciphertext_and_tag.end());
  const auto len = open_in_place(cid_sequence, pn, aad, buf);
  if (!len) return std::nullopt;
  buf.resize(*len);
  return buf;
}

}  // namespace xlink::quic
