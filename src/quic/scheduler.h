// Multipath packet scheduler interface and the packet send queue item.
//
// The connection keeps a packetization queue (the paper's pkt_send_q) of
// SendItems -- byte ranges of streams waiting to be packetized. A Scheduler
// decides which path carries the next packet and may insert re-injection
// items (duplicates of in-flight data) into the queue. XLINK's scheduler
// (core/xlink_scheduler.h) implements the paper's QoE-driven re-injection;
// mpquic/ hosts the baselines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "quic/frame.h"
#include "quic/types.h"
#include "sim/time.h"

namespace xlink::quic {

class Connection;

/// One entry of the packet send queue: a byte range of a stream.
struct SendItem {
  StreamId stream_id = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  bool fin = false;  // set on the item holding the stream's last byte
  int stream_priority = 0;  // higher first (paper: earlier stream wins)
  int frame_priority = 0;   // higher first (paper: first video frame wins)
  bool is_reinjection = false;
  bool is_retransmission = false;
  /// For re-injections: path the original copy is in flight on, so the
  /// scheduler can send the duplicate on a different path.
  std::optional<PathId> origin_path;
};

/// Where enqueue places an item relative to items already queued.
enum class InsertMode {
  kAppend,          // traditional (Fig. 4a): tail of the queue
  kPriority,        // before the first item of a strictly lower class
  kFrontOfClass,    // before the first item of an equal-or-lower class
};

/// Decides which path carries ACK_MP frames (paper §5.3, Fig. 8).
enum class AckPathPolicy {
  kOriginalPath,  // MPTCP-style: ack returns on the acked path
  kFastestPath,   // XLINK: ack returns on the min-RTT active path
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Picks the path for the next data packet; nullopt = nothing sendable
  /// (no active path with congestion window room).
  virtual std::optional<PathId> select_path(Connection& conn) = 0;

  /// Chance to insert re-injection items; called by the send loop before
  /// giving up on an empty/blocked queue and after each packet is formed.
  virtual void maybe_reinject(Connection& /*conn*/) {}

  /// QoE feedback arrived from the peer (server side of XLINK).
  virtual void on_qoe(Connection& /*conn*/, const QoeSignal& /*qoe*/) {}

  /// A packet on `path` was declared lost.
  virtual void on_loss(Connection& /*conn*/, PathId /*path*/) {}

  /// A probe timeout fired on `path`.
  virtual void on_pto(Connection& /*conn*/, PathId /*path*/) {}

  virtual std::string name() const = 0;
};

}  // namespace xlink::quic
