// Per-path loss detection, RFC 9002 style.
//
// Multipath QUIC gives each path its own packet number space, so each path
// owns one LossDetection instance. The class tracks sent-packet metadata
// only; the connection keeps the frame contents keyed by packet number and
// retransmits what this class declares acked or lost.
//
// A packet is declared lost when it is unacked and either
//   largest_acked >= pn + kPacketThreshold            (packet threshold), or
//   sent_time <= now - 9/8 * max(srtt, latest_rtt)    (time threshold,
//                                                      once something newer
//                                                      was acked).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "quic/frame.h"
#include "quic/rtt.h"
#include "quic/types.h"
#include "sim/time.h"

namespace xlink::quic {

constexpr std::uint64_t kPacketThreshold = 3;
constexpr int kTimeThresholdNum = 9;   // 9/8 of RTT
constexpr int kTimeThresholdDen = 8;

/// PTO exponential backoff doubles per consecutive timeout (RFC 9002 §6.2)
/// but is capped twice: the exponent stops growing, and the resulting
/// interval never exceeds kMaxPto. Without the absolute cap, a long
/// blackout (srtt inflated into seconds by ack silence) pushes the next
/// probe past the session horizon and a recovered path is never noticed.
constexpr std::uint32_t kMaxPtoBackoffShift = 6;
constexpr sim::Duration kMaxPto = sim::seconds(4);

/// The backed-off PTO interval for a path that has seen `pto_count`
/// consecutive timeouts.
sim::Duration backed_off_pto(sim::Duration base_pto, std::uint32_t pto_count);

/// Which of the two RFC 9002 rules declared a packet lost (exported to
/// telemetry; time-threshold losses are the signature of reordering or
/// delay spikes rather than drops).
enum class LossReason : std::uint8_t { kPacketThreshold = 0, kTimeThreshold };

struct LostPacket {
  PacketNumber pn = 0;
  LossReason reason = LossReason::kPacketThreshold;
};

class LossDetection {
 public:
  void on_packet_sent(PacketNumber pn, sim::Time now, std::size_t bytes,
                      bool ack_eliciting);

  struct AckOutcome {
    std::vector<PacketNumber> newly_acked;
    std::vector<LostPacket> lost;
    std::size_t acked_bytes = 0;
    /// RTT sample (now - send time of largest newly-acked, if ack-eliciting).
    std::optional<sim::Duration> rtt_sample;
    /// Send time of the largest newly-acked packet (CC recovery check).
    sim::Time largest_acked_sent_time = 0;
  };

  /// Processes an ACK block; also runs loss detection with the new
  /// largest-acked information.
  AckOutcome on_ack_received(const AckInfo& info, sim::Time now,
                             const RttEstimator& rtt);

  /// Re-runs time-threshold loss detection (call when the loss timer fires).
  std::vector<LostPacket> detect_losses(sim::Time now,
                                        const RttEstimator& rtt);

  /// Earliest time at which a currently-tracked packet would cross the time
  /// threshold; nullopt when no packet is waiting on it.
  std::optional<sim::Time> loss_time(const RttEstimator& rtt) const;

  /// Send time of the oldest ack-eliciting unacked packet (PTO base).
  std::optional<sim::Time> oldest_unacked_sent_time() const;

  std::size_t bytes_in_flight() const { return bytes_in_flight_; }
  bool has_ack_eliciting_in_flight() const;
  PacketNumber largest_acked() const { return largest_acked_; }
  std::size_t tracked_packets() const { return sent_.size(); }

  /// Forgets a packet without treating it as acked or lost (used when a
  /// probe duplicates data that was since acked through another copy).
  void forget(PacketNumber pn);

  /// Forgets everything in flight (failover rescue: the connection requeues
  /// the content elsewhere, so the dead path stops charging bytes_in_flight
  /// and stops arming loss/PTO timers for packets that will never be acked).
  void clear_in_flight();

 private:
  struct Meta {
    sim::Time sent_time = 0;
    std::size_t bytes = 0;
    bool ack_eliciting = false;
  };

  sim::Duration time_threshold(const RttEstimator& rtt) const;

  std::map<PacketNumber, Meta> sent_;
  std::size_t bytes_in_flight_ = 0;
  PacketNumber largest_acked_ = 0;
  bool any_acked_ = false;
};

}  // namespace xlink::quic
